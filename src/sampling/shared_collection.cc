#include "sampling/shared_collection.h"

#include <algorithm>
#include <utility>

namespace asti {

const CollectionView::Part& CollectionView::PartFor(size_t i) const {
  // Binary search for the last part with first_set <= i. Views span few
  // parts (one per doubling chunk), so this is cold and tiny.
  auto it = std::upper_bound(parts_.begin(), parts_.end(), i,
                             [](size_t index, const Part& part) { return index < part.first_set; });
  ASM_DCHECK(it != parts_.begin());
  return *std::prev(it);
}

size_t SharedRrCollection::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = 0;
  for (const Chunk& chunk : chunks_) bytes += chunk.memory_bytes;
  bytes += boundary_coverage_.size() * num_nodes_ * sizeof(uint32_t);
  for (const auto& [prefix, coverage] : derived_coverage_) {
    (void)prefix;
    bytes += coverage->size() * sizeof(uint32_t);
  }
  return bytes;
}

std::shared_ptr<const std::vector<uint32_t>> SharedRrCollection::CoverageForLocked(
    size_t prefix) const {
  if (prefix == 0) {
    return std::make_shared<const std::vector<uint32_t>>(num_nodes_, 0);
  }
  // Locate the chunk containing set prefix-1.
  auto it = std::upper_bound(chunks_.begin(), chunks_.end(), prefix - 1,
                             [](size_t index, const Chunk& chunk) { return index < chunk.first_set; });
  ASM_DCHECK(it != chunks_.begin());
  const size_t c = static_cast<size_t>(std::prev(it) - chunks_.begin());
  const Chunk& chunk = chunks_[c];
  if (prefix == chunk.first_set + chunk.num_sets) return boundary_coverage_[c];
  if (auto cached = derived_coverage_.find(prefix); cached != derived_coverage_.end()) {
    return cached->second;
  }
  // Derive: nearest lower boundary checkpoint + replay of the partial chunk.
  auto coverage = c == 0 ? std::make_shared<std::vector<uint32_t>>(num_nodes_, 0)
                         : std::make_shared<std::vector<uint32_t>>(*boundary_coverage_[c - 1]);
  for (size_t i = chunk.first_set; i < prefix; ++i) {
    const size_t local = i - chunk.first_set;
    for (uint64_t p = chunk.offsets[local]; p < chunk.offsets[local + 1]; ++p) {
      ++(*coverage)[chunk.pool[p]];
    }
  }
  std::shared_ptr<const std::vector<uint32_t>> result = std::move(coverage);
  if (derived_coverage_.size() >= kMaxDerivedCheckpoints) {
    // Evict the smallest prefix: doubling ladders revisit the large ones.
    derived_coverage_.erase(derived_coverage_.begin());
  }
  derived_coverage_.emplace(prefix, result);
  return result;
}

CollectionView SharedRrCollection::Prefix(size_t prefix) const {
  ASM_CHECK(prefix <= SealedSets())
      << "view past sealed prefix: " << prefix << " > " << SealedSets();
  CollectionView view;
  view.num_nodes_ = num_nodes_;
  view.num_sets_ = prefix;
  std::lock_guard<std::mutex> lock(mutex_);
  view.coverage_owner_ = CoverageForLocked(prefix);
  view.coverage_ = view.coverage_owner_.get();
  for (const Chunk& chunk : chunks_) {
    if (chunk.first_set >= prefix) break;
    view.parts_.push_back(
        CollectionView::Part{chunk.first_set, chunk.offsets, chunk.pool, chunk.owner});
    const size_t in_chunk = std::min(prefix - chunk.first_set, chunk.num_sets);
    view.total_entries_ += static_cast<size_t>(chunk.offsets[in_chunk]);
    view.memory_bytes_ += chunk.memory_bytes;
  }
  return view;
}

bool SharedRrCollection::ExtendTo(
    size_t target, const std::function<void(size_t first, size_t count, RrCollection& staging)>&
                       generate) {
  ASM_CHECK(target <= RrCollection::kMaxSets) << "SharedRrCollection overflow";
  std::lock_guard<std::mutex> extend_lock(extend_mutex_);
  const size_t sealed = SealedSets();
  if (sealed >= target) return true;  // lost the race to an earlier extender
  const size_t count = target - sealed;
  RrCollection staging(num_nodes_);
  generate(sealed, count, staging);
  if (staging.NumSets() != count) {
    // Under-delivery means cancellation fired mid-batch (ParallelFor chunks
    // stop at stride boundaries, leaving index holes). A hole would shift
    // every later set's global index and break the index-keyed determinism
    // contract, so the whole staging batch is discarded unpublished.
    return false;
  }
  auto sets = std::make_shared<const RrCollection>(std::move(staging));
  Chunk chunk;
  chunk.first_set = sealed;
  chunk.num_sets = sets->NumSets();
  chunk.offsets = sets->Offsets().data();
  chunk.pool = sets->Pool().data();
  chunk.memory_bytes = sets->MemoryBytes();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<std::vector<uint32_t>> boundary;
    if (boundary_coverage_.empty()) {
      boundary = std::make_shared<std::vector<uint32_t>>(sets->CoverageCounts());
    } else {
      boundary = std::make_shared<std::vector<uint32_t>>(*boundary_coverage_.back());
      const std::vector<uint32_t>& delta = sets->CoverageCounts();
      for (NodeId v = 0; v < num_nodes_; ++v) (*boundary)[v] += delta[v];
    }
    chunk.owner = std::move(sets);
    chunks_.push_back(std::move(chunk));
    boundary_coverage_.push_back(std::move(boundary));
  }
  sealed_.store(target, std::memory_order_release);
  return true;
}

void SharedRrCollection::AdoptSealedPrefix(std::span<const uint64_t> offsets,
                                           std::span<const NodeId> pool,
                                           std::span<const uint32_t> coverage,
                                           std::shared_ptr<const void> owner) {
  ASM_CHECK(!offsets.empty() && offsets.front() == 0);
  ASM_CHECK(offsets.back() == pool.size());
  ASM_CHECK(coverage.size() == num_nodes_);
  const size_t num_sets = offsets.size() - 1;
  ASM_CHECK(num_sets <= RrCollection::kMaxSets) << "adopted prefix overflows set ids";
  std::lock_guard<std::mutex> extend_lock(extend_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ASM_CHECK(chunks_.empty() && SealedSets() == 0)
        << "AdoptSealedPrefix on a non-empty collection";
    Chunk chunk;
    chunk.first_set = 0;
    chunk.num_sets = num_sets;
    chunk.offsets = offsets.data();
    chunk.pool = pool.data();
    // The mapped bytes (offsets + pool + the persisted coverage) are what
    // this chunk keeps resident.
    chunk.memory_bytes = offsets.size_bytes() + pool.size_bytes() + coverage.size_bytes();
    chunk.owner = std::move(owner);
    chunks_.push_back(std::move(chunk));
    boundary_coverage_.push_back(
        std::make_shared<const std::vector<uint32_t>>(coverage.begin(), coverage.end()));
  }
  sealed_.store(num_sets, std::memory_order_release);
}

}  // namespace asti
