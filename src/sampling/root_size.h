// Randomized rounding of the mRR root count (§3.3).
//
// Each mRR-set draws k roots with E[k] = n_i / η_i exactly:
// k = ⌊n_i/η_i⌋ + 1 with probability frac(n_i/η_i), else ⌊n_i/η_i⌋.
// Theorem 3.3's (1 − 1/e) lower bound on the estimator bias depends on
// this randomization (see stats/truncation.h for the fixed-k ablation).

#pragma once

#include <cstdint>

#include "graph/types.h"
#include "stats/truncation.h"
#include "util/rng.h"

namespace asti {

/// Per-round root-count sampler.
class RootSizeSampler {
 public:
  /// num_inactive = n_i, shortfall = η_i; requires 1 ≤ η_i ≤ n_i.
  RootSizeSampler(NodeId num_inactive, NodeId shortfall,
                  RootRounding rounding = RootRounding::kRandomized);

  /// Draws the root count for one mRR-set; always in [1, n_i].
  NodeId Sample(Rng& rng) const;

  NodeId floor_k() const { return floor_k_; }
  double fraction() const { return fraction_; }
  /// E[k] = n_i / η_i (exact under randomized rounding).
  double ExpectedK() const;

 private:
  NodeId num_inactive_;
  NodeId floor_k_;
  double fraction_;
  RootRounding rounding_;
};

}  // namespace asti
