// Append-only pool of (m)RR-sets with per-node coverage counts.
//
// Storage is a flat node pool plus offsets (CSR-style), so doubling the
// collection never reallocates per-set vectors. Coverage Λ_R(v) — the
// number of stored sets containing v — is maintained incrementally and is
// the statistic TRIM/TRIM-B maximize.

#pragma once

#include <span>
#include <vector>

#include "graph/types.h"
#include "sampling/rr_buffer.h"
#include "util/check.h"

namespace asti {

/// Collection R of reverse-reachable sets over nodes [0, n).
class RrCollection {
 public:
  /// Hard cap on NumSets(): coverage counters are uint32_t and Λ_R(v) can
  /// reach the set count, so growth past this fails an ASM_CHECK instead of
  /// silently wrapping Λ_R(v).
  static constexpr size_t kMaxSets = 0xffffffffULL;

  explicit RrCollection(NodeId num_nodes)
      : num_nodes_(num_nodes), coverage_(num_nodes, 0) {}

  NodeId num_nodes() const { return num_nodes_; }
  size_t NumSets() const { return offsets_.size() - 1; }
  /// Σ |R| over all stored sets.
  size_t TotalEntries() const { return pool_.size(); }

  /// Resident footprint of the collection's backing storage in bytes
  /// (pool + offsets + coverage counters), reported in request profiles.
  size_t MemoryBytes() const {
    return pool_.capacity() * sizeof(NodeId) + offsets_.capacity() * sizeof(uint64_t) +
           coverage_.capacity() * sizeof(uint32_t);
  }

  /// Nodes of the i-th set, in traversal discovery order (roots first).
  std::span<const NodeId> Set(size_t i) const {
    ASM_DCHECK(i < NumSets());
    return {pool_.data() + offsets_[i], pool_.data() + offsets_[i + 1]};
  }

  /// Pool offset where set i begins (SetOffset(NumSets()) == TotalEntries()).
  /// Lets a prefix view compute Σ |R| over its first i sets in O(1).
  size_t SetOffset(size_t i) const {
    ASM_DCHECK(i < offsets_.size());
    return offsets_[i];
  }

  /// Λ_R(v): number of stored sets containing v.
  uint32_t Coverage(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return coverage_[v];
  }

  const std::vector<uint32_t>& CoverageCounts() const { return coverage_; }

  // Whole-array views of the flat storage. The offsets array has
  // NumSets()+1 entries with offsets[0] == 0; set i is
  // pool[offsets[i] .. offsets[i+1]). This is the layout CollectionView
  // parts and the snapshot store's persisted collections share — offsets
  // are uint64_t precisely so an RrCollection's arrays and an mmap'd
  // section are interchangeable behind the same pointers.
  std::span<const uint64_t> Offsets() const { return offsets_; }
  std::span<const NodeId> Pool() const { return pool_; }

  /// Node maximizing Λ_R(v) (lowest id on ties). Requires n > 0.
  NodeId ArgMaxCoverage() const;

  /// Removes all sets; coverage resets to zero.
  void Clear();

  // --- Bulk growth ---------------------------------------------------------

  /// Reserves room for `extra_sets` more sets totalling `extra_entries`
  /// pool nodes, so a known-size append never reallocates mid-merge.
  void Reserve(size_t extra_sets, size_t extra_entries);

  /// Reserves room for `extra_sets` more sets, sized by the current mean
  /// set size — the right predictor for one more doubling batch.
  void Reserve(size_t extra_sets);

  /// Appends every sealed set of `buffer` (preserving set order and node
  /// order within each set) and updates coverage. O(buffer.TotalEntries()).
  void AppendBatch(const RrSetBuffer& buffer);

  /// Appends sets [first_set, first_set + count) of `other` (preserving
  /// set order and node order) and updates coverage. The index-ordered
  /// merge step for shard-partitioned generation: per-shard staging
  /// collections are stitched back into global set order one contiguous
  /// run at a time. O(entries copied).
  void AppendBatch(const RrCollection& other, size_t first_set, size_t count);

  /// Appends every set of `other`.
  void AppendBatch(const RrCollection& other) {
    AppendBatch(other, 0, other.NumSets());
  }

  // --- Building protocol (used by samplers) -------------------------------
  // Samplers append nodes of the in-progress set directly into the pool via
  // PushNode (which also serves as the BFS queue), then seal it.

  /// Appends a node to the in-progress set. Returns its index in the pool.
  size_t PushNode(NodeId v) {
    ASM_DCHECK(v < num_nodes_);
    pool_.push_back(v);
    return pool_.size() - 1;
  }

  /// Node at absolute pool index (for BFS-over-pool traversal).
  NodeId PoolNode(size_t index) const {
    ASM_DCHECK(index < pool_.size());
    return pool_[index];
  }

  /// First pool index of the in-progress set.
  size_t InProgressBegin() const { return offsets_.back(); }
  size_t PoolSize() const { return pool_.size(); }

  /// Seals the in-progress set (everything pushed since the last seal) and
  /// updates coverage. The set must be non-empty and duplicate-free.
  void SealSet();

 private:
  NodeId num_nodes_;
  std::vector<uint64_t> offsets_{0};
  std::vector<NodeId> pool_;
  std::vector<uint32_t> coverage_;
};

}  // namespace asti
