#include "sampling/sampler_cache.h"

#include <algorithm>
#include <numeric>

#include "parallel/parallel_sampler.h"
#include "sampling/mrr_set.h"
#include "sampling/rr_set.h"

namespace asti {

SamplerCache::Entry::Entry(const DirectedGraph& graph, const SamplerCacheKey& key)
    : collection(graph.NumNodes()),
      base(Rng(kCacheStreamSeed)
               .Split(static_cast<uint64_t>(key.kind))
               .Split(static_cast<uint64_t>(key.model))
               .Split(key.eta)
               .Split(static_cast<uint64_t>(key.rounding))) {
  if (key.kind == SamplerCacheKey::Kind::kMrr) {
    // Round-1 root-count law: n_i = n, η_i = η (full residual).
    root_size.emplace(graph.NumNodes(), key.eta, key.rounding);
  }
}

SamplerCache::SamplerCache(const DirectedGraph& graph,
                           std::shared_ptr<const CollectionWarmSource> warm,
                           const IndexedSetGenerator* generator, size_t byte_budget)
    : graph_(&graph),
      warm_(std::move(warm)),
      generator_(generator),
      byte_budget_(byte_budget),
      all_nodes_(graph.NumNodes()) {
  std::iota(all_nodes_.begin(), all_nodes_.end(), NodeId{0});
}

std::shared_ptr<SamplerCache::Entry> SamplerCache::EntryFor(const SamplerCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<Entry>& slot = entries_[key];
  if (slot == nullptr) {
    slot = std::make_shared<Entry>(*graph_, key);
    // Warm start: adopt the persisted sealed prefix (if the snapshot
    // carries one for this key) as the entry's initial extent. The source
    // has already certified seed/contract/digest, so the adopted sets are
    // exactly what the extension path below would have generated — the
    // first Acquire against them is an ordinary sealed-prefix hit.
    if (warm_ != nullptr) {
      if (std::optional<PersistedSealedPrefix> prefix = warm_->Find(key)) {
        slot->collection.AdoptSealedPrefix(prefix->offsets, prefix->pool,
                                           prefix->coverage, std::move(prefix->owner));
        warm_starts_.fetch_add(1, std::memory_order_relaxed);
        sets_adopted_.fetch_add(prefix->offsets.size() - 1, std::memory_order_relaxed);
      }
    }
  }
  slot->last_used = ++use_tick_;
  return slot;
}

void SamplerCache::EnforceBudget(const SamplerCacheKey& just_used) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    total += entry->collection.MemoryBytes();
  }
  while (total > byte_budget_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == just_used) continue;
      if (victim == entries_.end() || it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    total -= std::min(total, victim->second->collection.MemoryBytes());
    // Erasing the map slot drops only the cache's pin: an Acquire that
    // already holds the shared_ptr finishes normally, and the views it
    // returned pin their chunks past even that. The next Acquire for this
    // key re-creates the entry and regenerates the identical sets.
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

// Sequential extension with the identical per-set stream derivation as
// ParallelRrSampler::RunIndexed, so pool-less engines produce bit-identical
// cache contents to pooled ones.
template <class GenerateOne>
void GenerateSequential(size_t count, const Rng& base, size_t first_index,
                        const CancelScope* cancel, GenerateOne&& generate_one) {
  constexpr size_t kCancelStride = 64;
  for (size_t i = 0; i < count; ++i) {
    if (i % kCancelStride == 0 && Fired(cancel)) return;
    Rng set_rng = base.Split(first_index + i);
    generate_one(set_rng);
  }
}

}  // namespace

CollectionView SamplerCache::Acquire(const SamplerCacheKey& key, size_t target,
                                     ThreadPool* pool, const CancelScope* cancel,
                                     RequestProfile* profile) {
  ASM_CHECK(target > 0);
  const std::shared_ptr<Entry> pin = EntryFor(key);
  Entry& entry = *pin;
  size_t extended = 0;
  if (entry.collection.SealedSets() < target) {
    PhaseSpan span(profile, RequestPhase::kSampling);
    const bool first_fill = entry.collection.SealedSets() == 0;
    entry.collection.ExtendTo(
        target, [&](size_t first, size_t count, RrCollection& staging) {
          if (generator_ != nullptr) {
            // Shard-routed extension: the generator owns its own pools and
            // honors the identical base.Split(first + i) stream contract,
            // so the staging content is bit-identical to the paths below.
            generator_->Generate(key, entry.base,
                                 entry.root_size ? &*entry.root_size : nullptr,
                                 all_nodes_, first, count, staging, cancel);
          } else if (pool != nullptr) {
            // The inner sampler gets a null profile: extension time is
            // charged through the PhaseSpan above, and the staging
            // collection's bytes belong to the SHARED accounting below,
            // not the request-owned collection_bytes peak.
            ParallelRrSampler sampler(*graph_, key.model, *pool, cancel,
                                      /*profile=*/nullptr);
            if (key.kind == SamplerCacheKey::Kind::kRr) {
              sampler.GenerateIndexed(all_nodes_, nullptr, first, count, staging,
                                      entry.base);
            } else {
              sampler.GenerateMrrIndexed(all_nodes_, nullptr, *entry.root_size, first,
                                         count, staging, entry.base);
            }
          } else if (key.kind == SamplerCacheKey::Kind::kRr) {
            RrSampler sampler(*graph_, key.model);
            GenerateSequential(count, entry.base, first, cancel, [&](Rng& set_rng) {
              sampler.Generate(all_nodes_, nullptr, staging, set_rng);
            });
          } else {
            MrrSampler sampler(*graph_, key.model);
            GenerateSequential(count, entry.base, first, cancel, [&](Rng& set_rng) {
              const NodeId num_roots = entry.root_size->Sample(set_rng);
              sampler.Generate(all_nodes_, nullptr, num_roots, staging, set_rng);
            });
          }
          if (staging.NumSets() == count) extended = count;
        });
    if (extended > 0) {
      (first_fill ? misses_ : extensions_).fetch_add(1, std::memory_order_relaxed);
      sets_extended_.fetch_add(extended, std::memory_order_relaxed);
    }
  }
  // A short serve (< target) happens only when cancellation fired before
  // the extension published; callers treat it as a cancelled request.
  const size_t served = std::min(target, entry.collection.SealedSets());
  const size_t reused = served - std::min(served, extended);
  if (extended == 0 && served == target) hits_.fetch_add(1, std::memory_order_relaxed);
  sets_reused_.fetch_add(reused, std::memory_order_relaxed);
  NoteSharedSampling(profile, reused, extended, entry.collection.MemoryBytes());
  CollectionView view = entry.collection.Prefix(served);
  if (byte_budget_ > 0) EnforceBudget(key);
  return view;
}

size_t SamplerCache::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    bytes += entry->collection.MemoryBytes();
  }
  return bytes;
}

SamplerCacheStats SamplerCache::Stats() const {
  SamplerCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.extensions = extensions_.load(std::memory_order_relaxed);
  stats.sets_reused = sets_reused_.load(std::memory_order_relaxed);
  stats.sets_extended = sets_extended_.load(std::memory_order_relaxed);
  stats.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  stats.sets_adopted = sets_adopted_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<SealedCollectionExport> SamplerCache::ExportSealed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SealedCollectionExport> exports;
  exports.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    const size_t sealed = entry->collection.SealedSets();
    if (sealed == 0) continue;
    exports.push_back(SealedCollectionExport{key, entry->collection.Prefix(sealed)});
  }
  return exports;
}

}  // namespace asti
