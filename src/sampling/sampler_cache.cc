#include "sampling/sampler_cache.h"

#include <algorithm>
#include <numeric>

#include "parallel/parallel_sampler.h"
#include "sampling/mrr_set.h"
#include "sampling/rr_set.h"

namespace asti {

namespace {

// Root of every cache stream family. A fixed constant — NOT a request
// seed — so cached collections are a pure function of (graph snapshot,
// cache key), which is what makes any request history produce the same
// sets. Changing it is a determinism-breaking change (documented in
// src/api/README.md).
constexpr uint64_t kCacheStreamSeed = 0xa57150cc5eed0007ULL;

}  // namespace

SamplerCache::Entry::Entry(const DirectedGraph& graph, const SamplerCacheKey& key)
    : collection(graph.NumNodes()),
      base(Rng(kCacheStreamSeed)
               .Split(static_cast<uint64_t>(key.kind))
               .Split(static_cast<uint64_t>(key.model))
               .Split(key.eta)
               .Split(static_cast<uint64_t>(key.rounding))) {
  if (key.kind == SamplerCacheKey::Kind::kMrr) {
    // Round-1 root-count law: n_i = n, η_i = η (full residual).
    root_size.emplace(graph.NumNodes(), key.eta, key.rounding);
  }
}

SamplerCache::SamplerCache(const DirectedGraph& graph)
    : graph_(&graph), all_nodes_(graph.NumNodes()) {
  std::iota(all_nodes_.begin(), all_nodes_.end(), NodeId{0});
}

SamplerCache::Entry& SamplerCache::EntryFor(const SamplerCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Entry>& slot = entries_[key];
  if (slot == nullptr) slot = std::make_unique<Entry>(*graph_, key);
  return *slot;
}

namespace {

// Sequential extension with the identical per-set stream derivation as
// ParallelRrSampler::RunIndexed, so pool-less engines produce bit-identical
// cache contents to pooled ones.
template <class GenerateOne>
void GenerateSequential(size_t count, const Rng& base, size_t first_index,
                        const CancelScope* cancel, GenerateOne&& generate_one) {
  constexpr size_t kCancelStride = 64;
  for (size_t i = 0; i < count; ++i) {
    if (i % kCancelStride == 0 && Fired(cancel)) return;
    Rng set_rng = base.Split(first_index + i);
    generate_one(set_rng);
  }
}

}  // namespace

CollectionView SamplerCache::Acquire(const SamplerCacheKey& key, size_t target,
                                     ThreadPool* pool, const CancelScope* cancel,
                                     RequestProfile* profile) {
  ASM_CHECK(target > 0);
  Entry& entry = EntryFor(key);
  size_t extended = 0;
  if (entry.collection.SealedSets() < target) {
    PhaseSpan span(profile, RequestPhase::kSampling);
    const bool first_fill = entry.collection.SealedSets() == 0;
    entry.collection.ExtendTo(
        target, [&](size_t first, size_t count, RrCollection& staging) {
          if (pool != nullptr) {
            // The inner sampler gets a null profile: extension time is
            // charged through the PhaseSpan above, and the staging
            // collection's bytes belong to the SHARED accounting below,
            // not the request-owned collection_bytes peak.
            ParallelRrSampler sampler(*graph_, key.model, *pool, cancel,
                                      /*profile=*/nullptr);
            if (key.kind == SamplerCacheKey::Kind::kRr) {
              sampler.GenerateIndexed(all_nodes_, nullptr, first, count, staging,
                                      entry.base);
            } else {
              sampler.GenerateMrrIndexed(all_nodes_, nullptr, *entry.root_size, first,
                                         count, staging, entry.base);
            }
          } else if (key.kind == SamplerCacheKey::Kind::kRr) {
            RrSampler sampler(*graph_, key.model);
            GenerateSequential(count, entry.base, first, cancel, [&](Rng& set_rng) {
              sampler.Generate(all_nodes_, nullptr, staging, set_rng);
            });
          } else {
            MrrSampler sampler(*graph_, key.model);
            GenerateSequential(count, entry.base, first, cancel, [&](Rng& set_rng) {
              const NodeId num_roots = entry.root_size->Sample(set_rng);
              sampler.Generate(all_nodes_, nullptr, num_roots, staging, set_rng);
            });
          }
          if (staging.NumSets() == count) extended = count;
        });
    if (extended > 0) {
      (first_fill ? misses_ : extensions_).fetch_add(1, std::memory_order_relaxed);
      sets_extended_.fetch_add(extended, std::memory_order_relaxed);
    }
  }
  // A short serve (< target) happens only when cancellation fired before
  // the extension published; callers treat it as a cancelled request.
  const size_t served = std::min(target, entry.collection.SealedSets());
  const size_t reused = served - std::min(served, extended);
  if (extended == 0 && served == target) hits_.fetch_add(1, std::memory_order_relaxed);
  sets_reused_.fetch_add(reused, std::memory_order_relaxed);
  NoteSharedSampling(profile, reused, extended, entry.collection.MemoryBytes());
  return entry.collection.Prefix(served);
}

size_t SamplerCache::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    bytes += entry->collection.MemoryBytes();
  }
  return bytes;
}

SamplerCacheStats SamplerCache::Stats() const {
  SamplerCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.extensions = extensions_.load(std::memory_order_relaxed);
  stats.sets_reused = sets_reused_.load(std::memory_order_relaxed);
  stats.sets_extended = sets_extended_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace asti
