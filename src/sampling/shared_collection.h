// Engine-owned, grow-only RR collections with immutable read views.
//
// PR 7 moves collection ownership from per-request to engine-owned: many
// requests against the same (graph epoch, model, weight-scheme) snapshot
// read one SharedRrCollection instead of each regenerating their own sets.
// The structure is the OPIM-C reuse argument lifted across requests: RR/mRR
// sets whose distribution does not depend on request state (full-residual
// sampling — round 1 of every adaptive run, and the whole of ATEUC /
// Bisection) are exchangeable, so any certified prefix of a shared stream
// is as good as a fresh collection of the same length.
//
// Two types:
//
//   * CollectionView — an immutable borrowed/snapshot read surface with the
//     same read API as RrCollection (NumSets / Set / Coverage /
//     CoverageCounts / TotalEntries). Coverage solvers operate on views;
//     an owned RrCollection converts implicitly (a non-owning borrow), so
//     the per-request residual paths are untouched. Views over a shared
//     collection hold shared_ptr pins on the storage they reference: a
//     GraphCatalog::Swap or Retire — or further growth of the shared
//     collection — never invalidates a live view.
//
//   * SharedRrCollection — epoch-keyed (one per GraphState, which is keyed
//     by (name, epoch)), grow-only chunked storage with an atomically
//     published *sealed prefix*. Readers take a view of EXACTLY the first
//     P sealed sets; writers extend by generating the shortfall into a
//     private staging collection and publishing it as one immutable chunk.
//     Extensions that under-deliver (cooperative cancellation fired
//     mid-generation) are discarded whole — a partial or index-holed batch
//     can never poison the shared stream.
//
// Determinism: the shared collection stores WHAT was generated; the
// sampler-cache layer (sampler_cache.h) guarantees set i's content is a
// pure function of (graph snapshot, cache key, i) by deriving per-set RNG
// streams from the collection index, never from request seeds. Under that
// contract a view of the first P sets is bit-identical to what a fresh
// request would have sampled, which is what extends the engine's
// determinism guarantee to "cached vs freshly sampled".

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/types.h"
#include "sampling/rr_collection.h"
#include "util/check.h"

namespace asti {

/// Immutable read view over a prefix of (m)RR-sets: either a non-owning
/// borrow of one RrCollection, or a pinned snapshot of a
/// SharedRrCollection's sealed prefix (possibly spanning several chunks).
/// Value type; copying copies the pins. The read API mirrors RrCollection,
/// so coverage solvers are written once against views.
class CollectionView {
 public:
  CollectionView() = default;

  /// Implicit non-owning borrow of a whole owned collection — the bridge
  /// keeping every `Solve`-path call site (`GreedyMaxCoverage(collection,
  /// ...)`) source-compatible after the solvers moved to views. The
  /// collection must outlive the view and not grow while viewed.
  CollectionView(const RrCollection& collection)  // NOLINT(google-explicit-constructor)
      : coverage_(&collection.CoverageCounts()),
        num_nodes_(collection.num_nodes()),
        num_sets_(collection.NumSets()),
        total_entries_(collection.TotalEntries()),
        memory_bytes_(collection.MemoryBytes()) {
    parts_.push_back(Part{0, collection.Offsets().data(), collection.Pool().data(), nullptr});
  }

  NodeId num_nodes() const { return num_nodes_; }
  size_t NumSets() const { return num_sets_; }
  /// Σ |R| over the viewed prefix.
  size_t TotalEntries() const { return total_entries_; }
  /// Resident bytes of the storage backing this view (shared chunks are
  /// counted whole — they are resident regardless of the prefix length).
  size_t MemoryBytes() const { return memory_bytes_; }

  /// Nodes of the i-th viewed set. Single-part views (borrows, and shared
  /// prefixes inside the first chunk) take one predictable branch before
  /// delegating — the "zero overhead vs direct RrCollection access" path
  /// pinned by bench_micro_sampling.
  std::span<const NodeId> Set(size_t i) const {
    ASM_DCHECK(i < num_sets_);
    const Part* part = &parts_.back();
    if (i < part->first_set) part = &PartFor(i);
    const size_t local = i - part->first_set;
    return {part->pool + part->offsets[local], part->pool + part->offsets[local + 1]};
  }

  /// Λ(v) over the viewed prefix only.
  uint32_t Coverage(NodeId v) const {
    ASM_DCHECK(v < num_nodes_);
    return (*coverage_)[v];
  }

  /// Per-node coverage counts of the viewed prefix (size num_nodes()).
  const std::vector<uint32_t>& CoverageCounts() const { return *coverage_; }

 private:
  friend class SharedRrCollection;

  // A part references flat set storage directly — a local offsets array
  // (part set i is pool[offsets[i] .. offsets[i+1]), offsets[0] == 0) plus
  // the node pool — with a type-erased keepalive. The same representation
  // serves heap RrCollection chunks and mmap'd snapshot sections, so the
  // hot Set(i) path never branches on where the bytes live.
  struct Part {
    size_t first_set = 0;  // global index of the part's set 0
    const uint64_t* offsets = nullptr;
    const NodeId* pool = nullptr;
    std::shared_ptr<const void> owner;  // null for borrows
  };

  const Part& PartFor(size_t i) const;

  std::vector<Part> parts_;
  const std::vector<uint32_t>* coverage_ = nullptr;
  std::shared_ptr<const std::vector<uint32_t>> coverage_owner_;
  NodeId num_nodes_ = 0;
  size_t num_sets_ = 0;
  size_t total_entries_ = 0;
  size_t memory_bytes_ = 0;
};

/// Grow-only shared collection with an atomically published sealed prefix.
///
/// Storage is chunked: each successful extension publishes one immutable
/// RrCollection chunk, so readers never observe reallocation and a view's
/// pins keep exactly the chunks it spans alive. Cumulative coverage is
/// checkpointed at every chunk boundary; coverage for an intra-chunk
/// prefix P is derived on demand (copy the nearest boundary checkpoint,
/// replay the partial chunk's sets) and memoized with bounded count.
///
/// Concurrency: SealedSets() is one relaxed atomic load. Prefix() takes a
/// short mutex to snapshot the chunk list / checkpoint maps. ExtendTo()
/// serializes writers on a separate extension mutex held across the (long)
/// generation, so readers are never blocked behind sampling; the chunk
/// publish itself is a brief critical section on the reader mutex.
class SharedRrCollection {
 public:
  explicit SharedRrCollection(NodeId num_nodes) : num_nodes_(num_nodes) {}

  SharedRrCollection(const SharedRrCollection&) = delete;
  SharedRrCollection& operator=(const SharedRrCollection&) = delete;

  NodeId num_nodes() const { return num_nodes_; }

  /// Sets currently sealed (readable); monotone non-decreasing.
  size_t SealedSets() const { return sealed_.load(std::memory_order_acquire); }

  /// Resident bytes: all chunk storage plus coverage checkpoints.
  size_t MemoryBytes() const;

  /// View of EXACTLY the first `prefix` sealed sets (coverage counts
  /// included). Requires prefix <= SealedSets(). prefix == 0 yields an
  /// empty view.
  CollectionView Prefix(size_t prefix) const;

  /// Grows the sealed prefix to at least `target`. `generate` must append
  /// exactly `count` sets — those with global indices [first, first+count)
  /// — to `staging`; an under-delivering callback (cooperative cancellation
  /// fired mid-batch) makes the whole extension be discarded. Returns true
  /// iff SealedSets() >= target on exit. Concurrent callers serialize; a
  /// caller that lost the race to a same-target extender returns true
  /// without generating.
  bool ExtendTo(size_t target,
                const std::function<void(size_t first, size_t count,
                                         RrCollection& staging)>& generate);

  /// Installs an already-generated sealed prefix (a persisted collection
  /// mapped from a snapshot file) as this collection's first chunk:
  /// `offsets` (num_sets+1 entries, offsets[0] == 0, offsets[num_sets] ==
  /// pool.size()) and `pool` describe the sets, `coverage` (num_nodes
  /// entries) their cumulative coverage, and `owner` keeps the referenced
  /// bytes alive (the mmap'd payload). Valid only while the collection is
  /// empty — warm start happens at cache-entry creation, before any
  /// extension. The coverage checkpoint is copied O(n) onto the heap so
  /// views keep returning `const std::vector<uint32_t>&`; the sets
  /// themselves stay zero-copy. The CALLER vouches that the sets are
  /// exactly what cold generation under the entry's stream contract would
  /// produce (the snapshot loader checks stream seed, contract version,
  /// and graph digest before offering a prefix).
  void AdoptSealedPrefix(std::span<const uint64_t> offsets, std::span<const NodeId> pool,
                         std::span<const uint32_t> coverage,
                         std::shared_ptr<const void> owner);

 private:
  // See CollectionView::Part: flat storage pointers + type-erased
  // keepalive, identical for heap chunks and mapped snapshot sections.
  struct Chunk {
    size_t first_set = 0;
    size_t num_sets = 0;
    const uint64_t* offsets = nullptr;  // num_sets+1 entries, offsets[0] == 0
    const NodeId* pool = nullptr;
    size_t memory_bytes = 0;
    std::shared_ptr<const void> owner;
  };

  /// Coverage snapshot for the first `prefix` sets; caller holds mutex_.
  std::shared_ptr<const std::vector<uint32_t>> CoverageForLocked(size_t prefix) const;

  /// Derived (non-boundary) checkpoints kept at most this many; smallest
  /// prefixes are evicted first (doubling ladders re-request large ones).
  static constexpr size_t kMaxDerivedCheckpoints = 8;

  const NodeId num_nodes_;
  std::atomic<size_t> sealed_{0};

  /// Serializes extenders; held across generation (long). Never acquired
  /// while holding mutex_ (lock order: extend_mutex_ -> mutex_).
  std::mutex extend_mutex_;

  /// Guards chunks_ / checkpoints; held only for snapshot/publish/derive.
  mutable std::mutex mutex_;
  std::vector<Chunk> chunks_;
  /// boundary_coverage_[c] = cumulative coverage after chunks_[0..c].
  std::vector<std::shared_ptr<const std::vector<uint32_t>>> boundary_coverage_;
  /// Memoized intra-chunk prefix coverage, keyed by prefix length.
  mutable std::map<size_t, std::shared_ptr<const std::vector<uint32_t>>> derived_coverage_;
};

}  // namespace asti
