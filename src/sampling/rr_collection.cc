#include "sampling/rr_collection.h"

namespace asti {

NodeId RrCollection::ArgMaxCoverage() const {
  ASM_CHECK(num_nodes_ > 0);
  NodeId best = 0;
  uint32_t best_coverage = coverage_[0];
  for (NodeId v = 1; v < num_nodes_; ++v) {
    if (coverage_[v] > best_coverage) {
      best = v;
      best_coverage = coverage_[v];
    }
  }
  return best;
}

void RrCollection::Clear() {
  offsets_.assign(1, 0);
  pool_.clear();
  std::fill(coverage_.begin(), coverage_.end(), 0);
}

void RrCollection::Reserve(size_t extra_sets, size_t extra_entries) {
  offsets_.reserve(offsets_.size() + extra_sets);
  pool_.reserve(pool_.size() + extra_entries);
}

void RrCollection::Reserve(size_t extra_sets) {
  const size_t mean_size = NumSets() == 0 ? 1 : (TotalEntries() + NumSets() - 1) / NumSets();
  Reserve(extra_sets, extra_sets * mean_size);
}

void RrCollection::AppendBatch(const RrSetBuffer& buffer) {
  ASM_DCHECK(pool_.size() == offsets_.back()) << "append during an in-progress set";
  // Λ_R(v) ≤ NumSets() always, so bounding the set count below 2^32 keeps
  // every uint32_t coverage counter (and the uint32_t set ids of the
  // coverage solvers' inverted indexes) from wrapping. Billion-set
  // collections must fail loudly, not corrupt Λ_R(v).
  ASM_CHECK(buffer.NumSets() <= kMaxSets - NumSets())
      << "RrCollection overflow: " << NumSets() << " + " << buffer.NumSets() << " sets";
  const std::vector<size_t>& offsets = buffer.offsets();
  const std::vector<NodeId>& pool = buffer.pool();
  const size_t sealed_entries = offsets.back();  // ignore any unsealed tail
  Reserve(buffer.NumSets(), sealed_entries);
  const size_t base = pool_.size();
  for (size_t i = 0; i < sealed_entries; ++i) {
    const NodeId v = pool[i];
    ASM_DCHECK(v < num_nodes_);
    pool_.push_back(v);
    ++coverage_[v];
  }
  for (size_t s = 1; s < offsets.size(); ++s) offsets_.push_back(base + offsets[s]);
}

void RrCollection::AppendBatch(const RrCollection& other, size_t first_set,
                               size_t count) {
  ASM_DCHECK(pool_.size() == offsets_.back()) << "append during an in-progress set";
  ASM_DCHECK(first_set + count <= other.NumSets());
  ASM_DCHECK(other.num_nodes() == num_nodes_);
  ASM_CHECK(count <= kMaxSets - NumSets())
      << "RrCollection overflow: " << NumSets() << " + " << count << " sets";
  const std::span<const uint64_t> offsets = other.Offsets();
  const std::span<const NodeId> pool = other.Pool();
  const uint64_t src_begin = offsets[first_set];
  const uint64_t src_end = offsets[first_set + count];
  Reserve(count, src_end - src_begin);
  const size_t base = pool_.size();
  for (uint64_t i = src_begin; i < src_end; ++i) {
    const NodeId v = pool[i];
    ASM_DCHECK(v < num_nodes_);
    pool_.push_back(v);
    ++coverage_[v];
  }
  for (size_t s = 1; s <= count; ++s) {
    offsets_.push_back(base + (offsets[first_set + s] - src_begin));
  }
}

void RrCollection::SealSet() {
  const size_t begin = offsets_.back();
  ASM_CHECK(pool_.size() > begin) << "sealing an empty RR-set";
  // See AppendBatch: the set-count bound saturates coverage_ loudly.
  ASM_CHECK(NumSets() < kMaxSets) << "RrCollection overflow: 2^32 - 1 sets";
  for (size_t i = begin; i < pool_.size(); ++i) {
    ASM_DCHECK(coverage_[pool_[i]] < kMaxSets);
    ++coverage_[pool_[i]];
  }
  offsets_.push_back(pool_.size());
}

}  // namespace asti
