#include "sampling/rr_collection.h"

namespace asti {

NodeId RrCollection::ArgMaxCoverage() const {
  ASM_CHECK(num_nodes_ > 0);
  NodeId best = 0;
  uint32_t best_coverage = coverage_[0];
  for (NodeId v = 1; v < num_nodes_; ++v) {
    if (coverage_[v] > best_coverage) {
      best = v;
      best_coverage = coverage_[v];
    }
  }
  return best;
}

void RrCollection::Clear() {
  offsets_.assign(1, 0);
  pool_.clear();
  std::fill(coverage_.begin(), coverage_.end(), 0);
}

void RrCollection::SealSet() {
  const size_t begin = offsets_.back();
  ASM_CHECK(pool_.size() > begin) << "sealing an empty RR-set";
  for (size_t i = begin; i < pool_.size(); ++i) ++coverage_[pool_[i]];
  offsets_.push_back(pool_.size());
}

}  // namespace asti
