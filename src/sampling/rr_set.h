// Single-root reverse-reachable set sampling (Borgs et al. 2014).
//
// A random RR-set is the set of nodes that reach a uniformly chosen root
// in a random realization. n · Pr[S ∩ R ≠ ∅] = E[I(S)], which makes RR
// collections unbiased spread estimators — the machinery behind the
// AdaptIM and ATEUC baselines. The residual variant roots at a uniform
// *inactive* node and traverses only inactive nodes, estimating marginal
// spreads on G_i.
//
// IC traversal: reverse BFS flipping one coin per examined in-edge.
// LT traversal: each visited node retains at most one in-edge (live-edge
// equivalence), so the traversal adds at most one predecessor per node.

#pragma once

#include <vector>

#include "diffusion/model.h"
#include "graph/graph.h"
#include "sampling/rr_collection.h"
#include "util/bit_vector.h"
#include "util/rng.h"

namespace asti {

/// Cumulative traversal-cost counters; back the Lemma 3.8/3.9 validation
/// bench (expected mRR cost ∝ OPT_i/η_i · m_i).
struct SamplerCost {
  uint64_t nodes_visited = 0;
  uint64_t edges_examined = 0;
};

/// Sampler of single-root RR-sets; reusable scratch per graph.
class RrSampler {
 public:
  RrSampler(const DirectedGraph& graph, DiffusionModel model)
      : graph_(&graph), model_(model), visited_(graph.NumNodes()) {}

  /// Cumulative cost since construction / the last ResetCost().
  const SamplerCost& cost() const { return cost_; }
  void ResetCost() { cost_ = SamplerCost{}; }

  /// Appends one RR-set to `out`. The root is drawn uniformly from
  /// `candidates` (the residual node list); nodes with active->Get(v) true
  /// are excluded from traversal. Pass active == nullptr for the full graph.
  /// Sink is any type with the RrCollection building protocol; instantiated
  /// for RrCollection and RrSetBuffer (worker-local parallel staging).
  template <class Sink>
  void Generate(const std::vector<NodeId>& candidates, const BitVector* active,
                Sink& out, Rng& rng);

 private:
  friend class MrrSampler;

  // Continues a reverse traversal over every node already pushed to the
  // in-progress set of `out` (the pool doubles as the BFS queue).
  template <class Sink>
  void TraverseFrom(const BitVector* active, Sink& out, Rng& rng);

  const DirectedGraph* graph_;
  DiffusionModel model_;
  EpochVisitedSet visited_;
  SamplerCost cost_;
};

}  // namespace asti
