// Coverage-free staging buffer for sealed (m)RR-sets.
//
// Exposes the same building protocol as RrCollection (PushNode doubles as
// the BFS queue, SealSet closes a set) but keeps no per-node coverage, so
// a worker thread can generate sets into private storage with zero shared
// state; RrCollection::AppendBatch later folds the buffer in — including
// the coverage increments — in one O(entries) pass.

#pragma once

#include <span>
#include <vector>

#include "graph/types.h"
#include "util/check.h"

namespace asti {

/// Append-only pool of sealed RR-sets without coverage counts.
class RrSetBuffer {
 public:
  size_t NumSets() const { return offsets_.size() - 1; }
  /// Σ |R| over all stored sets.
  size_t TotalEntries() const { return pool_.size(); }

  /// Nodes of the i-th set, in traversal discovery order (roots first).
  std::span<const NodeId> Set(size_t i) const {
    ASM_DCHECK(i < NumSets());
    return {pool_.data() + offsets_[i], pool_.data() + offsets_[i + 1]};
  }

  /// Set boundaries (size NumSets()+1) and flat node pool, for bulk merge.
  const std::vector<size_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& pool() const { return pool_; }

  /// Removes all sets. Keeps capacity, so a reused worker buffer stops
  /// allocating after the first batch.
  void Clear() {
    offsets_.assign(1, 0);
    pool_.clear();
  }

  // --- Building protocol (shared with RrCollection) ------------------------

  /// Appends a node to the in-progress set. Returns its index in the pool.
  size_t PushNode(NodeId v) {
    pool_.push_back(v);
    return pool_.size() - 1;
  }

  /// Node at absolute pool index (for BFS-over-pool traversal).
  NodeId PoolNode(size_t index) const {
    ASM_DCHECK(index < pool_.size());
    return pool_[index];
  }

  /// First pool index of the in-progress set.
  size_t InProgressBegin() const { return offsets_.back(); }
  size_t PoolSize() const { return pool_.size(); }

  /// Seals the in-progress set. The set must be non-empty and duplicate-free.
  void SealSet() {
    ASM_CHECK(pool_.size() > offsets_.back()) << "sealing an empty RR-set";
    offsets_.push_back(pool_.size());
  }

 private:
  std::vector<size_t> offsets_{0};
  std::vector<NodeId> pool_;
};

}  // namespace asti
