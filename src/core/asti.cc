#include "core/asti.h"

#include <chrono>

#include "util/check.h"

namespace asti {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

AdaptiveRunTrace RunAdaptivePolicy(AdaptiveWorld& world, RoundSelector& selector,
                                   Rng& rng, const CancelScope* cancel) {
  ASM_CHECK(!world.TargetReached()) << "world already reached its target";
  const auto run_start = std::chrono::steady_clock::now();

  AdaptiveRunTrace trace;
  trace.eta = world.eta();
  while (!world.TargetReached()) {
    if (Fired(cancel)) break;
    const auto round_start = std::chrono::steady_clock::now();
    RoundRecord record;
    record.round = trace.rounds.size() + 1;
    record.shortfall_before = world.Shortfall();

    ResidualView view;
    view.active = &world.ActiveMask();
    view.inactive_nodes = &world.InactiveNodes();
    view.shortfall = world.Shortfall();

    SelectionResult selection = selector.SelectBatch(view, rng);
    if (selection.seeds.empty()) {
      // Only a fired stop condition may abort a round without seeds; an
      // uncancelled selector returning nothing is still a hard bug.
      ASM_CHECK(Fired(cancel)) << selector.Name() << " returned no seeds";
      break;
    }
    for (NodeId seed : selection.seeds) {
      ASM_CHECK(seed < world.graph().NumNodes());
      ASM_CHECK(!world.IsActive(seed))
          << selector.Name() << " selected an already-active seed " << seed;
    }

    const std::vector<NodeId> activated = world.Observe(selection.seeds);
    record.seeds = std::move(selection.seeds);
    record.newly_activated = static_cast<NodeId>(activated.size());
    record.truncated_gain =
        std::min<NodeId>(record.newly_activated, record.shortfall_before);
    record.estimated_gain = selection.estimated_marginal_gain;
    record.num_samples = selection.num_samples;
    record.seconds = SecondsSince(round_start);

    trace.total_samples += record.num_samples;
    for (NodeId seed : record.seeds) trace.seeds.push_back(seed);
    trace.rounds.push_back(std::move(record));

    ASM_CHECK(trace.rounds.size() <= world.graph().NumNodes())
        << "adaptive loop failed to terminate";
  }
  trace.total_activated = world.NumActive();
  trace.target_reached = world.TargetReached();
  trace.seconds = SecondsSince(run_start);
  return trace;
}

}  // namespace asti
