#include "core/trace.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace asti {

RunAggregate Aggregate(const std::vector<AdaptiveRunTrace>& traces) {
  RunAggregate aggregate;
  aggregate.runs = traces.size();
  if (traces.empty()) return aggregate;
  double min_spread = static_cast<double>(traces.front().total_activated);
  double max_spread = min_spread;
  for (const AdaptiveRunTrace& trace : traces) {
    aggregate.mean_seeds += static_cast<double>(trace.NumSeeds());
    aggregate.mean_seconds += trace.seconds;
    const double spread = static_cast<double>(trace.total_activated);
    aggregate.mean_spread += spread;
    min_spread = std::min(min_spread, spread);
    max_spread = std::max(max_spread, spread);
    if (trace.target_reached) ++aggregate.runs_reaching_target;
  }
  const double r = static_cast<double>(traces.size());
  aggregate.mean_seeds /= r;
  aggregate.mean_seconds /= r;
  aggregate.mean_spread /= r;
  aggregate.min_spread = min_spread;
  aggregate.max_spread = max_spread;
  return aggregate;
}

std::string Summarize(const RunAggregate& aggregate) {
  std::ostringstream out;
  out.precision(3);
  out << "seeds=" << aggregate.mean_seeds << " time=" << aggregate.mean_seconds
      << "s spread=" << aggregate.mean_spread << " reached="
      << aggregate.runs_reaching_target << "/" << aggregate.runs;
  return out.str();
}

}  // namespace asti
