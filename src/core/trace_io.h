// Persistence for adaptive run traces.
//
// Serializes AdaptiveRunTrace to a line-oriented text format (and back) so
// experiment campaigns can be archived and re-analyzed without re-running
// the policies. Format, one record per line:
//
//   trace <eta> <total_activated> <reached:0|1> <seconds> <total_samples>
//   round <idx> <shortfall> <newly> <truncated> <estimate> <samples> <secs>
//         ... followed on the same line by the round's seeds
//   end
//
// Multiple traces concatenate; Load returns them all.

#pragma once

#include <string>
#include <vector>

#include "core/trace.h"
#include "util/status.h"

namespace asti {

/// Serializes traces to the archive format.
std::string SerializeTraces(const std::vector<AdaptiveRunTrace>& traces);

/// Parses the archive format; rejects malformed input.
StatusOr<std::vector<AdaptiveRunTrace>> ParseTraces(const std::string& text);

/// File round trip.
Status SaveTraces(const std::vector<AdaptiveRunTrace>& traces, const std::string& path);
StatusOr<std::vector<AdaptiveRunTrace>> LoadTraces(const std::string& path);

}  // namespace asti
