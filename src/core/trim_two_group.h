// Two-group (OPIM-C style) variant of TRIM — the design §3.4 argues
// against for singleton selection.
//
// OPIM-C (Tang et al. 2018) maintains two disjoint mRR collections: R1
// derives the candidate (max coverage), R2 validates it (the lower bound
// is computed on samples the candidate never saw, so no union bound over
// all n_i nodes is needed: a2-style confidence suffices on both sides).
// TRIM instead spends its entire budget on one group and pays the ln n_i
// union-bound term. For b = 1 the one-group design wins (Huang et al.
// 2017); the bench/bench_ablation_opimc binary quantifies the gap. This
// class exists for that comparison and as a drop-in RoundSelector.

#pragma once

#include "core/selector.h"
#include "core/trim.h"
#include "diffusion/model.h"
#include "graph/graph.h"
#include "sampling/mrr_set.h"
#include "sampling/rr_collection.h"

namespace asti {

/// Two-collection truncated influence maximizer.
class TrimTwoGroup : public RoundSelector {
 public:
  /// The graph must outlive the selector.
  TrimTwoGroup(const DirectedGraph& graph, DiffusionModel model, TrimOptions options = {});

  SelectionResult SelectBatch(const ResidualView& view, Rng& rng) override;

  const char* Name() const override { return "ASTI-2G"; }

 private:
  const DirectedGraph* graph_;
  TrimOptions options_;
  MrrSampler sampler_;
  RrCollection derive_;    // R1
  RrCollection validate_;  // R2
  ParallelEngine engine_;
};

}  // namespace asti
