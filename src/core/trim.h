// TRIM — TRuncated Influence Maximization (Algorithm 2).
//
// Per ASTI round, TRIM returns a node whose expected marginal truncated
// spread is a (1 − 1/e)(1 − ε)-approximation to the best inactive node's.
// It follows the OPIM-C doubling scheme: start from θ° mRR-sets, pick the
// max-coverage node v*, certify it with the Lemma A.2 lower/upper bounds,
// and double the collection until Λˡ(v*)/Λᵘ(v°) ≥ 1 − ε̂ or the iteration
// budget T is exhausted. All constants match the paper's pseudocode.

#pragma once

#include <memory>

#include "core/selector.h"
#include "diffusion/model.h"
#include "graph/graph.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/mrr_set.h"
#include "sampling/rr_collection.h"
#include "sampling/sampler_cache.h"

namespace asti {

struct TrimSchedule;

/// Tuning knobs for TRIM; defaults mirror the paper's experiments (ε = 0.5).
struct TrimOptions {
  double epsilon = 0.5;          // approximation slack ε ∈ (0, 1)
  RootRounding rounding = RootRounding::kRandomized;  // ablation hook
  /// mRR generation workers: 1 = in-place sequential sampling (the paper's
  /// reference path), 0 = one per hardware thread, k = exactly k workers.
  /// Results are deterministic for a fixed seed at every setting, and
  /// identical across all settings ≠ 1 (see src/parallel/README.md).
  size_t num_threads = 1;
  /// Externally owned worker pool; overrides num_threads when non-null.
  /// Several selectors may share one pool (per-batch TaskGroups isolate
  /// them) — the SeedMinEngine serving mode. Must outlive the selector.
  ThreadPool* pool = nullptr;
  /// Cooperative stop condition (not owned; must outlive the selector).
  /// Polled at generation-stride and certify-iteration boundaries; once it
  /// fires, SelectBatch returns an empty (to-be-discarded) result promptly
  /// instead of finishing the doubling schedule. Completed selections are
  /// bit-identical with or without a scope attached.
  const CancelScope* cancel = nullptr;
  /// Per-request phase profile (not owned; may be null). Accrues sampling /
  /// coverage / certify wall time and sampling volume; never read by the
  /// algorithm, so selections are bit-identical with or without it.
  RequestProfile* profile = nullptr;
  /// Shared sampler cache (not owned; may be null). When set, the ROUND-1
  /// batch — the only one whose sampling distribution is residual-free —
  /// asks the cache for the exact ladder prefixes instead of generating an
  /// owned collection, and consumes zero draws from the request RNG (cache
  /// streams are key-derived; see sampling/sampler_cache.h). Later rounds
  /// condition on activations and always sample into owned collections.
  /// Null = the legacy fully request-owned path.
  SamplerCache* sampler_cache = nullptr;
};

/// Single-seed truncated influence maximizer.
class Trim : public RoundSelector {
 public:
  /// The graph must outlive the selector.
  Trim(const DirectedGraph& graph, DiffusionModel model, TrimOptions options = {});

  /// Algorithm 2 on the residual graph described by `view`.
  SelectionResult SelectBatch(const ResidualView& view, Rng& rng) override;

  const char* Name() const override { return "ASTI"; }

 private:
  /// The doubling loop against cached sealed prefixes (round 1 with a
  /// sampler cache): per iteration, ask for the EXACT ladder prefix —
  /// results are therefore independent of whatever the cache holds.
  SelectionResult SelectCached(const TrimSchedule& schedule, NodeId shortfall);

  const DirectedGraph* graph_;
  DiffusionModel model_;
  TrimOptions options_;
  MrrSampler sampler_;
  RrCollection collection_;
  ParallelEngine engine_;
};

/// Constants of one TRIM invocation (Alg. 2 lines 1-5), exposed so tests
/// can pin them against the pseudocode.
struct TrimSchedule {
  double delta = 0.0;      // δ
  double eps_hat = 0.0;    // ε̂
  double theta_max = 0.0;  // θ_max
  size_t theta_zero = 0;   // θ°
  size_t max_iterations = 0;  // T
  double a1 = 0.0;
  double a2 = 0.0;
};

/// Computes the Algorithm 2 schedule for a round with n_i inactive nodes
/// and shortfall η_i.
TrimSchedule ComputeTrimSchedule(NodeId num_inactive, NodeId shortfall, double epsilon);

}  // namespace asti
