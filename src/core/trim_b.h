// TRIM-B — batched TRuncated Influence Maximization (Algorithm 3).
//
// Generalizes TRIM to select b seeds per round via greedy max coverage over
// the mRR collection. The per-round guarantee becomes
// ρ_b (1 − 1/e)(1 − ε) with ρ_b = 1 − (1 − 1/b)^b; the schedule constants
// gain the b and ln C(n_i, b) terms from the paper's pseudocode. With
// b == 1 TRIM-B degenerates to TRIM exactly.

#pragma once

#include <memory>

#include "core/selector.h"
#include "diffusion/model.h"
#include "graph/graph.h"
#include "parallel/parallel_sampler.h"
#include "parallel/thread_pool.h"
#include "sampling/mrr_set.h"
#include "sampling/rr_collection.h"
#include "sampling/sampler_cache.h"

namespace asti {

struct TrimBSchedule;

/// Tuning knobs for TRIM-B.
struct TrimBOptions {
  double epsilon = 0.5;   // approximation slack ε ∈ (0, 1)
  NodeId batch_size = 2;  // b ≥ 1
  RootRounding rounding = RootRounding::kRandomized;
  /// mRR generation workers; semantics as TrimOptions::num_threads.
  size_t num_threads = 1;
  /// Shared external pool; semantics as TrimOptions::pool.
  ThreadPool* pool = nullptr;
  /// Cooperative stop condition; semantics as TrimOptions::cancel (also
  /// polled per greedy-coverage pick inside the certify step).
  const CancelScope* cancel = nullptr;
  /// Per-request phase profile; semantics as TrimOptions::profile.
  RequestProfile* profile = nullptr;
  /// Shared sampler cache; semantics as TrimOptions::sampler_cache (round-1
  /// batches reuse the cache's sealed prefixes, zero request-RNG draws).
  SamplerCache* sampler_cache = nullptr;
};

/// Batched truncated influence maximizer.
class TrimB : public RoundSelector {
 public:
  /// The graph must outlive the selector.
  TrimB(const DirectedGraph& graph, DiffusionModel model, TrimBOptions options);

  /// Algorithm 3 on the residual graph described by `view`. The effective
  /// batch size is min(b, n_i).
  SelectionResult SelectBatch(const ResidualView& view, Rng& rng) override;

  const char* Name() const override { return name_.c_str(); }

 private:
  /// Round-1 doubling loop against cached sealed prefixes; requests exact
  /// ladder prefix lengths, so results are cache-state-independent.
  SelectionResult SelectCached(const TrimBSchedule& schedule, NodeId shortfall,
                               NodeId batch, const ResidualView& view);

  const DirectedGraph* graph_;
  DiffusionModel model_;
  TrimBOptions options_;
  MrrSampler sampler_;
  RrCollection collection_;
  std::string name_;
  ParallelEngine engine_;
};

/// Constants of one TRIM-B invocation (Alg. 3 lines 1-5).
struct TrimBSchedule {
  double delta = 0.0;
  double eps_hat = 0.0;
  double rho_b = 0.0;      // ρ_b
  double theta_max = 0.0;
  size_t theta_zero = 0;
  size_t max_iterations = 0;
  double a1 = 0.0;
  double a2 = 0.0;
};

/// Computes the Algorithm 3 schedule for a round with n_i inactive nodes,
/// shortfall η_i, and batch size b ≤ n_i.
TrimBSchedule ComputeTrimBSchedule(NodeId num_inactive, NodeId shortfall, NodeId batch,
                                   double epsilon);

}  // namespace asti
