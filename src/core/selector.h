// Round-selector interface: the pluggable "line 3" of ASTI (Alg. 1).
//
// Every adaptive policy in this library (TRIM, TRIM-B, AdaptIM, degree
// heuristic, oracle greedy) implements RoundSelector; the ASTI driver is
// agnostic to which one it runs.

#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"
#include "util/bit_vector.h"
#include "util/rng.h"

namespace asti {

/// The residual graph G_i handed to a selector each round.
struct ResidualView {
  /// Activation mask over the original graph; nullptr means nothing active.
  const BitVector* active = nullptr;
  /// Residual node list V_i (every entry inactive). Never empty.
  const std::vector<NodeId>* inactive_nodes = nullptr;
  /// Shortfall η_i = η − (n − n_i); always ≥ 1 while ASTI runs.
  NodeId shortfall = 0;

  NodeId NumInactive() const { return static_cast<NodeId>(inactive_nodes->size()); }
};

/// What a selector reports back for one round.
struct SelectionResult {
  /// Chosen batch (size 1 for TRIM, b for TRIM-B).
  std::vector<NodeId> seeds;
  /// Selector's estimate of Δ(seeds | S_{i-1}) — η_i·Λ(S)/|R| for
  /// sampling-based selectors, 0 if the selector does not estimate.
  double estimated_marginal_gain = 0.0;
  /// Reverse-reachable sets (or MC trials) generated this round.
  size_t num_samples = 0;
  /// Doubling iterations consumed (sampling-based selectors).
  size_t iterations = 0;
};

/// Per-round seed selection strategy.
class RoundSelector {
 public:
  virtual ~RoundSelector() = default;

  /// Selects the next batch on the residual graph. Must return at least one
  /// seed, all drawn from view.inactive_nodes.
  virtual SelectionResult SelectBatch(const ResidualView& view, Rng& rng) = 0;

  /// Human-readable name for tables ("ASTI", "ASTI-8", "AdaptIM", ...).
  virtual const char* Name() const = 0;
};

}  // namespace asti
