#include "core/trace_io.h"

#include <fstream>
#include <sstream>

namespace asti {

std::string SerializeTraces(const std::vector<AdaptiveRunTrace>& traces) {
  std::ostringstream out;
  out.precision(17);
  for (const AdaptiveRunTrace& trace : traces) {
    out << "trace " << trace.eta << ' ' << trace.total_activated << ' '
        << (trace.target_reached ? 1 : 0) << ' ' << trace.seconds << ' '
        << trace.total_samples << '\n';
    for (const RoundRecord& round : trace.rounds) {
      out << "round " << round.round << ' ' << round.shortfall_before << ' '
          << round.newly_activated << ' ' << round.truncated_gain << ' '
          << round.estimated_gain << ' ' << round.num_samples << ' '
          << round.seconds;
      for (NodeId seed : round.seeds) out << ' ' << seed;
      out << '\n';
    }
    out << "end\n";
  }
  return out.str();
}

StatusOr<std::vector<AdaptiveRunTrace>> ParseTraces(const std::string& text) {
  std::istringstream in(text);
  std::vector<AdaptiveRunTrace> traces;
  AdaptiveRunTrace current;
  bool in_trace = false;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string tag;
    tokens >> tag;
    const auto malformed = [&](const char* why) {
      return Status::InvalidArgument("line " + std::to_string(line_number) + ": " + why);
    };
    if (tag == "trace") {
      if (in_trace) return malformed("nested trace");
      current = AdaptiveRunTrace{};
      int reached = 0;
      if (!(tokens >> current.eta >> current.total_activated >> reached >>
            current.seconds >> current.total_samples)) {
        return malformed("bad trace header");
      }
      current.target_reached = reached != 0;
      in_trace = true;
    } else if (tag == "round") {
      if (!in_trace) return malformed("round outside trace");
      RoundRecord round;
      if (!(tokens >> round.round >> round.shortfall_before >> round.newly_activated >>
            round.truncated_gain >> round.estimated_gain >> round.num_samples >>
            round.seconds)) {
        return malformed("bad round record");
      }
      NodeId seed = 0;
      while (tokens >> seed) {
        round.seeds.push_back(seed);
        current.seeds.push_back(seed);
      }
      if (round.seeds.empty()) return malformed("round without seeds");
      current.rounds.push_back(std::move(round));
    } else if (tag == "end") {
      if (!in_trace) return malformed("end outside trace");
      traces.push_back(std::move(current));
      in_trace = false;
    } else {
      return malformed("unknown tag");
    }
  }
  if (in_trace) return Status::InvalidArgument("unterminated trace");
  return traces;
}

Status SaveTraces(const std::vector<AdaptiveRunTrace>& traces, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << SerializeTraces(traces);
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

StatusOr<std::vector<AdaptiveRunTrace>> LoadTraces(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTraces(buffer.str());
}

}  // namespace asti
