#include "core/trim.h"

#include <cmath>

#include "coverage/max_coverage.h"
#include "stats/concentration.h"
#include "util/check.h"

namespace asti {

namespace {
constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
}  // namespace

TrimSchedule ComputeTrimSchedule(NodeId num_inactive, NodeId shortfall, double epsilon) {
  ASM_CHECK(epsilon > 0.0 && epsilon < 1.0);
  ASM_CHECK(shortfall >= 1 && shortfall <= num_inactive);
  const double ni = static_cast<double>(num_inactive);
  const double eta_i = static_cast<double>(shortfall);

  TrimSchedule schedule;
  schedule.delta = epsilon / (100.0 * kOneMinusInvE * (1.0 - epsilon) * eta_i);
  schedule.eps_hat = 99.0 * epsilon / (100.0 - epsilon);
  const double ln6d = std::log(6.0 / schedule.delta);
  const double root = std::sqrt(ln6d) + std::sqrt(std::log(ni) + ln6d);
  schedule.theta_max =
      2.0 * ni * root * root / (schedule.eps_hat * schedule.eps_hat);
  const double theta_zero =
      schedule.theta_max * schedule.eps_hat * schedule.eps_hat / ni;
  schedule.theta_zero = static_cast<size_t>(std::max(1.0, std::ceil(theta_zero)));
  schedule.max_iterations =
      DoublingLadderIterations(schedule.theta_zero, schedule.theta_max);
  const double t = static_cast<double>(schedule.max_iterations);
  schedule.a1 = std::log(3.0 * t / schedule.delta) + std::log(ni);
  schedule.a2 = std::log(3.0 * t / schedule.delta);
  return schedule;
}

Trim::Trim(const DirectedGraph& graph, DiffusionModel model, TrimOptions options)
    : graph_(&graph),
      model_(model),
      options_(options),
      sampler_(graph, model),
      collection_(graph.NumNodes()),
      engine_(graph, model, options.num_threads, options.pool, options.cancel,
              options.profile) {
  ASM_CHECK(options_.epsilon > 0.0 && options_.epsilon < 1.0);
}

SelectionResult Trim::SelectCached(const TrimSchedule& schedule, NodeId shortfall) {
  const SamplerCacheKey key = SamplerCacheKey::Mrr(model_, shortfall, options_.rounding);
  SelectionResult result;
  for (size_t t = 1; t <= schedule.max_iterations; ++t) {
    const size_t want = DoublingLadderSets(schedule.theta_zero, t);
    const CollectionView sets = options_.sampler_cache->Acquire(
        key, want, engine_.pool(), options_.cancel, options_.profile);
    // A short view means cancellation fired before the extension published.
    if (sets.NumSets() < want || Fired(options_.cancel)) return SelectionResult{};
    const NodeId v_star = ArgMaxCoverage(sets, engine_.pool(), options_.profile);
    const double coverage = static_cast<double>(sets.Coverage(v_star));
    double lower, upper;
    {
      PhaseSpan certify(options_.profile, RequestPhase::kCertify);
      lower = CoverageLowerBound(coverage, schedule.a1);
      upper = CoverageUpperBound(coverage, schedule.a2);
    }
    result.iterations = t;
    if (lower / upper >= 1.0 - schedule.eps_hat || t == schedule.max_iterations) {
      result.seeds = {v_star};
      result.estimated_marginal_gain =
          static_cast<double>(shortfall) * coverage / static_cast<double>(want);
      result.num_samples = want;
      return result;
    }
  }
  ASM_CHECK(false) << "unreachable: TRIM always returns by iteration T";
  return result;
}

SelectionResult Trim::SelectBatch(const ResidualView& view, Rng& rng) {
  const NodeId ni = view.NumInactive();
  const NodeId eta_i = view.shortfall;
  ASM_CHECK(eta_i >= 1 && eta_i <= ni);

  const TrimSchedule schedule = ComputeTrimSchedule(ni, eta_i, options_.epsilon);

  // Round 1 samples the full residual (every node inactive) — the only
  // round whose distribution is request-independent, hence cacheable. The
  // cached path consumes ZERO draws from `rng`, so all later rounds see
  // identical request streams whether this round hit, extended, or (with a
  // request-private cache, --no-cache) freshly sampled.
  if (options_.sampler_cache != nullptr && ni == graph_->NumNodes()) {
    return SelectCached(schedule, eta_i);
  }

  const RootSizeSampler root_size(ni, eta_i, options_.rounding);

  collection_.Clear();
  auto generate = [&](size_t count) {
    if (ParallelRrSampler* parallel = engine_.get()) {
      parallel->GenerateMrrBatch(*view.inactive_nodes, view.active, root_size, count,
                                 collection_, rng);
      return;
    }
    PhaseSpan span(options_.profile, RequestPhase::kSampling);
    collection_.Reserve(count);
    for (size_t i = 0; i < count; ++i) {
      // Sequential analogue of the parallel sampler's stride poll; the
      // run is unwinding, so the truncated stream consumption is moot.
      if (i % 64 == 0 && Fired(options_.cancel)) return;
      sampler_.Generate(*view.inactive_nodes, view.active, root_size.Sample(rng),
                        collection_, rng);
    }
    NoteSampling(options_.profile, count, collection_.MemoryBytes());
  };
  generate(schedule.theta_zero);

  SelectionResult result;
  for (size_t t = 1; t <= schedule.max_iterations; ++t) {
    if (Fired(options_.cancel)) return SelectionResult{};  // empty seeds = cancelled round
    const NodeId v_star =
        ArgMaxCoverage(collection_, engine_.pool(), options_.profile);
    const double coverage = static_cast<double>(collection_.Coverage(v_star));
    double lower, upper;
    {
      // Scoped so the certify slot sees only the bound evaluation, not the
      // doubling generate() at the bottom of the iteration.
      PhaseSpan certify(options_.profile, RequestPhase::kCertify);
      lower = CoverageLowerBound(coverage, schedule.a1);
      upper = CoverageUpperBound(coverage, schedule.a2);
    }
    result.iterations = t;
    if (lower / upper >= 1.0 - schedule.eps_hat || t == schedule.max_iterations) {
      result.seeds = {v_star};
      result.estimated_marginal_gain = static_cast<double>(eta_i) * coverage /
                                       static_cast<double>(collection_.NumSets());
      result.num_samples = collection_.NumSets();
      return result;
    }
    generate(collection_.NumSets());  // double |R|
  }
  ASM_CHECK(false) << "unreachable: TRIM always returns by iteration T";
  return result;
}

}  // namespace asti
