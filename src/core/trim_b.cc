#include "core/trim_b.h"

#include <cmath>

#include "coverage/lazy_greedy.h"
#include "coverage/max_coverage.h"
#include "stats/concentration.h"
#include "util/check.h"

namespace asti {

namespace {
constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
}  // namespace

TrimBSchedule ComputeTrimBSchedule(NodeId num_inactive, NodeId shortfall, NodeId batch,
                                   double epsilon) {
  ASM_CHECK(epsilon > 0.0 && epsilon < 1.0);
  ASM_CHECK(shortfall >= 1 && shortfall <= num_inactive);
  ASM_CHECK(batch >= 1 && batch <= num_inactive);
  const double ni = static_cast<double>(num_inactive);
  const double eta_i = static_cast<double>(shortfall);
  const double b = static_cast<double>(batch);

  TrimBSchedule schedule;
  schedule.delta = epsilon / (100.0 * kOneMinusInvE * (1.0 - epsilon) * eta_i);
  schedule.eps_hat = 99.0 * epsilon / (100.0 - epsilon);
  schedule.rho_b = GreedyCoverageRatio(batch);
  const double ln6d = std::log(6.0 / schedule.delta);
  const double ln_choose = LogBinomial(ni, b);
  const double root = std::sqrt(ln6d) + std::sqrt((ln_choose + ln6d) / schedule.rho_b);
  schedule.theta_max =
      2.0 * ni * root * root / (b * schedule.eps_hat * schedule.eps_hat);
  const double theta_zero =
      schedule.theta_max * b * schedule.eps_hat * schedule.eps_hat / ni;
  schedule.theta_zero = static_cast<size_t>(std::max(1.0, std::ceil(theta_zero)));
  schedule.max_iterations =
      DoublingLadderIterations(schedule.theta_zero, schedule.theta_max);
  const double t = static_cast<double>(schedule.max_iterations);
  schedule.a1 = std::log(3.0 * t / schedule.delta) + ln_choose;
  schedule.a2 = std::log(3.0 * t / schedule.delta);
  return schedule;
}

TrimB::TrimB(const DirectedGraph& graph, DiffusionModel model, TrimBOptions options)
    : graph_(&graph),
      model_(model),
      options_(options),
      sampler_(graph, model),
      collection_(graph.NumNodes()),
      name_("ASTI-" + std::to_string(options.batch_size)),
      engine_(graph, model, options.num_threads, options.pool, options.cancel,
              options.profile) {
  ASM_CHECK(options_.epsilon > 0.0 && options_.epsilon < 1.0);
  ASM_CHECK(options_.batch_size >= 1);
}

SelectionResult TrimB::SelectCached(const TrimBSchedule& schedule, NodeId shortfall,
                                    NodeId batch, const ResidualView& view) {
  const SamplerCacheKey key = SamplerCacheKey::Mrr(model_, shortfall, options_.rounding);
  SelectionResult result;
  for (size_t t = 1; t <= schedule.max_iterations; ++t) {
    const size_t want = DoublingLadderSets(schedule.theta_zero, t);
    const CollectionView sets = options_.sampler_cache->Acquire(
        key, want, engine_.pool(), options_.cancel, options_.profile);
    if (sets.NumSets() < want || Fired(options_.cancel)) return SelectionResult{};
    const MaxCoverageResult greedy =
        LazyGreedyMaxCoverage(sets, batch, view.inactive_nodes, engine_.pool(),
                              options_.cancel, options_.profile);
    if (Fired(options_.cancel)) return SelectionResult{};
    const double coverage = static_cast<double>(greedy.covered_sets);
    double lower, upper;
    {
      PhaseSpan certify(options_.profile, RequestPhase::kCertify);
      lower = CoverageLowerBound(coverage, schedule.a1);
      upper = CoverageUpperBound(coverage / schedule.rho_b, schedule.a2);
    }
    result.iterations = t;
    if (lower / upper >= schedule.rho_b * (1.0 - schedule.eps_hat) ||
        t == schedule.max_iterations) {
      result.seeds = greedy.selected;
      result.estimated_marginal_gain =
          static_cast<double>(shortfall) * coverage / static_cast<double>(want);
      result.num_samples = want;
      return result;
    }
  }
  ASM_CHECK(false) << "unreachable: TRIM-B always returns by iteration T";
  return result;
}

SelectionResult TrimB::SelectBatch(const ResidualView& view, Rng& rng) {
  const NodeId ni = view.NumInactive();
  const NodeId eta_i = view.shortfall;
  ASM_CHECK(eta_i >= 1 && eta_i <= ni);
  const NodeId batch = std::min<NodeId>(options_.batch_size, ni);

  const TrimBSchedule schedule = ComputeTrimBSchedule(ni, eta_i, batch, options_.epsilon);

  // Round 1 (full residual) is request-independent, hence served from the
  // sampler cache with zero request-RNG draws; see Trim::SelectBatch.
  if (options_.sampler_cache != nullptr && ni == graph_->NumNodes()) {
    return SelectCached(schedule, eta_i, batch, view);
  }

  const RootSizeSampler root_size(ni, eta_i, options_.rounding);

  collection_.Clear();
  auto generate = [&](size_t count) {
    if (ParallelRrSampler* parallel = engine_.get()) {
      parallel->GenerateMrrBatch(*view.inactive_nodes, view.active, root_size, count,
                                 collection_, rng);
      return;
    }
    PhaseSpan span(options_.profile, RequestPhase::kSampling);
    collection_.Reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (i % 64 == 0 && Fired(options_.cancel)) return;
      sampler_.Generate(*view.inactive_nodes, view.active, root_size.Sample(rng),
                        collection_, rng);
    }
    NoteSampling(options_.profile, count, collection_.MemoryBytes());
  };
  generate(schedule.theta_zero);

  SelectionResult result;
  for (size_t t = 1; t <= schedule.max_iterations; ++t) {
    if (Fired(options_.cancel)) return SelectionResult{};  // empty seeds = cancelled round
    // CELF lazy greedy: identical selection to the eager version (see
    // lazy_greedy_test), without the O(b·n) argmax rescans. Shares the
    // sampling pool; results are thread-count-invariant.
    const MaxCoverageResult greedy =
        LazyGreedyMaxCoverage(collection_, batch, view.inactive_nodes, engine_.pool(),
                              options_.cancel, options_.profile);
    if (Fired(options_.cancel)) return SelectionResult{};  // coverage pass aborted mid-pick
    const double coverage = static_cast<double>(greedy.covered_sets);
    double lower, upper;
    {
      // Scoped so certify time excludes the doubling generate() below.
      PhaseSpan certify(options_.profile, RequestPhase::kCertify);
      lower = CoverageLowerBound(coverage, schedule.a1);
      upper = CoverageUpperBound(coverage / schedule.rho_b, schedule.a2);
    }
    result.iterations = t;
    if (lower / upper >= schedule.rho_b * (1.0 - schedule.eps_hat) ||
        t == schedule.max_iterations) {
      result.seeds = greedy.selected;
      result.estimated_marginal_gain = static_cast<double>(eta_i) * coverage /
                                       static_cast<double>(collection_.NumSets());
      result.num_samples = collection_.NumSets();
      return result;
    }
    generate(collection_.NumSets());  // double |R|
  }
  ASM_CHECK(false) << "unreachable: TRIM-B always returns by iteration T";
  return result;
}

}  // namespace asti
