#include "core/trim_two_group.h"

#include <cmath>

#include "coverage/max_coverage.h"
#include "stats/concentration.h"
#include "util/check.h"

namespace asti {

TrimTwoGroup::TrimTwoGroup(const DirectedGraph& graph, DiffusionModel model,
                           TrimOptions options)
    : graph_(&graph),
      options_(options),
      sampler_(graph, model),
      derive_(graph.NumNodes()),
      validate_(graph.NumNodes()),
      engine_(graph, model, options.num_threads, options.pool) {
  ASM_CHECK(options_.epsilon > 0.0 && options_.epsilon < 1.0);
}

SelectionResult TrimTwoGroup::SelectBatch(const ResidualView& view, Rng& rng) {
  const NodeId ni = view.NumInactive();
  const NodeId eta_i = view.shortfall;
  ASM_CHECK(eta_i >= 1 && eta_i <= ni);

  // The same doubling schedule as one-group TRIM; each of R1/R2 receives
  // half of every generation step. The validation bound needs no ln n_i
  // union term (v* is independent of R2), so a1 == a2 here — the upside
  // OPIM-C buys with the split.
  const TrimSchedule schedule = ComputeTrimSchedule(ni, eta_i, options_.epsilon);
  const RootSizeSampler root_size(ni, eta_i, options_.rounding);

  derive_.Clear();
  validate_.Clear();
  auto generate = [&](size_t per_group) {
    if (ParallelRrSampler* parallel = engine_.get()) {
      parallel->GenerateMrrBatch(*view.inactive_nodes, view.active, root_size,
                                 per_group, derive_, rng);
      parallel->GenerateMrrBatch(*view.inactive_nodes, view.active, root_size,
                                 per_group, validate_, rng);
      return;
    }
    derive_.Reserve(per_group);
    validate_.Reserve(per_group);
    for (size_t i = 0; i < per_group; ++i) {
      sampler_.Generate(*view.inactive_nodes, view.active, root_size.Sample(rng),
                        derive_, rng);
      sampler_.Generate(*view.inactive_nodes, view.active, root_size.Sample(rng),
                        validate_, rng);
    }
  };
  generate((schedule.theta_zero + 1) / 2);

  SelectionResult result;
  for (size_t t = 1; t <= schedule.max_iterations; ++t) {
    const NodeId v_star = ArgMaxCoverage(derive_, engine_.pool());
    const double derive_coverage = static_cast<double>(derive_.Coverage(v_star));
    const double validate_coverage =
        static_cast<double>(validate_.Coverage(v_star));
    const double lower = CoverageLowerBound(validate_coverage, schedule.a2);
    const double upper = CoverageUpperBound(derive_coverage, schedule.a2);
    result.iterations = t;
    if ((upper > 0.0 && lower / upper >= 1.0 - schedule.eps_hat) ||
        t == schedule.max_iterations) {
      result.seeds = {v_star};
      // Report the validation-group estimate (unbiased for the chosen node).
      result.estimated_marginal_gain =
          static_cast<double>(eta_i) * validate_coverage /
          static_cast<double>(validate_.NumSets());
      result.num_samples = derive_.NumSets() + validate_.NumSets();
      return result;
    }
    generate(derive_.NumSets());  // double both groups
  }
  ASM_CHECK(false) << "unreachable: TrimTwoGroup always returns by iteration T";
  return result;
}

}  // namespace asti
