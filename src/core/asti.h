// ASTI — the Adaptive Seed minimization via Truncated Influence framework
// (Algorithm 1).
//
// Drives any RoundSelector against an AdaptiveWorld: select a batch on the
// residual graph, observe the actual propagation, update the residual
// state, repeat until at least η nodes are active. With TRIM as the
// selector the policy is a (ln η + 1)²/((1 − 1/e)(1 − ε))-approximation in
// expectation (Theorem 3.7); with TRIM-B the ρ_b factor is added
// (Theorem 4.2).

#pragma once

#include "core/selector.h"
#include "core/trace.h"
#include "diffusion/world.h"
#include "util/cancellation.h"

namespace asti {

/// Runs the adaptive select-observe loop to completion and returns the
/// full trace. The world must start with Shortfall() ≥ 1.
///
/// Termination: every round seeds at least one inactive node, which
/// activates itself, so the loop finishes within η rounds (⌈η/b⌉ for
/// batched selectors).
///
/// A non-null `cancel` is polled at every round boundary, and a selector
/// sharing the same scope may abort mid-round (signalled by returning no
/// seeds — only legal when the scope has fired). Either way the loop
/// stops early with trace.target_reached == false and the caller decides
/// what to do with the partial trace (SeedMinEngine discards it and
/// returns Status::Cancelled / DeadlineExceeded).
AdaptiveRunTrace RunAdaptivePolicy(AdaptiveWorld& world, RoundSelector& selector,
                                   Rng& rng, const CancelScope* cancel = nullptr);

}  // namespace asti
