// Execution traces of adaptive runs: everything the evaluation section
// plots (seed counts, running time, per-round marginal truncated spreads,
// final spread per realization).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/types.h"

namespace asti {

/// One select-observe round of an adaptive policy.
struct RoundRecord {
  size_t round = 0;                  // 1-based
  std::vector<NodeId> seeds;         // batch selected this round
  NodeId shortfall_before = 0;       // η_i entering the round
  NodeId newly_activated = 0;        // |observed activations|
  NodeId truncated_gain = 0;         // min{newly_activated, shortfall_before}
  double estimated_gain = 0.0;       // selector's Δ estimate
  size_t num_samples = 0;            // RR/mRR sets generated
  double seconds = 0.0;              // selection + observation time
};

/// Full trace of one adaptive run on one hidden realization.
struct AdaptiveRunTrace {
  std::vector<RoundRecord> rounds;
  std::vector<NodeId> seeds;     // flattened, selection order
  NodeId eta = 0;
  NodeId total_activated = 0;
  bool target_reached = false;
  double seconds = 0.0;          // wall time of the whole run
  size_t total_samples = 0;

  size_t NumSeeds() const { return seeds.size(); }
};

/// Aggregates over repeated runs (the paper averages 20 realizations).
struct RunAggregate {
  double mean_seeds = 0.0;
  double mean_seconds = 0.0;
  double mean_spread = 0.0;
  double min_spread = 0.0;
  double max_spread = 0.0;
  size_t runs = 0;
  size_t runs_reaching_target = 0;
};

/// Computes the aggregate of a batch of traces.
RunAggregate Aggregate(const std::vector<AdaptiveRunTrace>& traces);

/// One-line summary, e.g. "seeds=12.4 time=0.8s spread=310.0 reached=20/20".
std::string Summarize(const RunAggregate& aggregate);

}  // namespace asti
