#include "delta/catalog_delta.h"

#include <memory>
#include <utility>

#include "shard/partition.h"
#include "shard/topology.h"
#include "util/timer.h"

namespace asti {

StatusOr<DeltaSwapResult> SwapWithDelta(GraphCatalog& catalog, const std::string& name,
                                        const EdgeDelta& delta) {
  ASM_ASSIGN_OR_RETURN(const GraphRef base, catalog.Get(name));

  DeltaSwapResult result;
  WallTimer apply_timer;
  ASM_ASSIGN_OR_RETURN(DirectedGraph minted,
                       ApplyDelta(base.graph(), delta, &result.stats));
  result.minted_digest = ForwardCsrDigest(minted);
  auto snapshot = std::make_shared<const DirectedGraph>(std::move(minted));

  std::shared_ptr<const ShardTopology> topology;
  if (base.shard_topology() != nullptr) {
    ASM_ASSIGN_OR_RETURN(
        topology, MakeShardTopology(*snapshot, base.shard_topology()->num_shards()));
    result.resharded = true;
  }
  result.apply_seconds = apply_timer.Seconds();

  WallTimer swap_timer;
  ASM_ASSIGN_OR_RETURN(result.ref,
                       catalog.Swap(name, std::move(snapshot), base.weight_scheme(),
                                    /*warm=*/nullptr, std::move(topology)));
  result.swap_seconds = swap_timer.Seconds();
  return result;
}

}  // namespace asti
