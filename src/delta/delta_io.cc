#include "delta/delta_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/crc32.h"

namespace asti {

namespace {

Status Bad(const std::string& path, const std::string& msg) {
  return Status::InvalidArgument("delta '" + path + "': " + msg);
}

}  // namespace

Status WriteDeltaBinary(const EdgeDelta& delta, const std::string& path,
                        uint64_t base_store_digest) {
  ASM_RETURN_NOT_OK(ValidateDelta(delta));

  std::vector<DeltaOpRecord> records;
  records.reserve(delta.ops.size());
  for (const DeltaOp& op : delta.ops) {
    DeltaOpRecord record{};
    record.kind = static_cast<uint32_t>(op.kind);
    record.source = op.source;
    record.target = op.target;
    record.probability = op.kind == DeltaOpKind::kDelete ? 0.0 : op.probability;
    records.push_back(record);
  }

  DeltaFileHeader header{};
  std::memcpy(header.magic, kDeltaMagic, sizeof(header.magic));
  header.version = kDeltaVersion;
  header.op_count = records.size();
  header.base_digest = delta.base_digest;
  header.result_digest = delta.result_digest;
  header.base_store_digest = base_store_digest;
  header.ops_crc = Crc32(records.data(), records.size() * sizeof(DeltaOpRecord));
  header.header_crc = 0;
  header.header_crc = Crc32(&header, sizeof(header));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + tmp + "' for writing");
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(records.data()),
              static_cast<std::streamsize>(records.size() * sizeof(DeltaOpRecord)));
    if (!out) return Status::IOError("short write to '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename '" + tmp + "' -> '" + path + "': " + ec.message());
  }
  return Status::OK();
}

StatusOr<EdgeDelta> ReadDeltaBinary(const std::string& path,
                                    uint64_t* base_store_digest) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  if (bytes.size() < sizeof(DeltaFileHeader)) {
    return Bad(path, "only " + std::to_string(bytes.size()) + " bytes, need " +
                         std::to_string(sizeof(DeltaFileHeader)) + " (truncated?)");
  }
  DeltaFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kDeltaMagic, sizeof(header.magic)) != 0) {
    return Bad(path, "bad magic (not an ASMD delta)");
  }
  if (header.version != kDeltaVersion) {
    return Bad(path, "unsupported delta version " + std::to_string(header.version) +
                         " (this build reads version " +
                         std::to_string(kDeltaVersion) + ")");
  }
  DeltaFileHeader crc_check = header;
  crc_check.header_crc = 0;
  if (Crc32(&crc_check, sizeof(crc_check)) != header.header_crc) {
    return Bad(path, "header CRC mismatch");
  }
  const uint64_t want = sizeof(DeltaFileHeader) + header.op_count * sizeof(DeltaOpRecord);
  if (bytes.size() != want) {
    return Bad(path, "file is " + std::to_string(bytes.size()) + " bytes, header says " +
                         std::to_string(want));
  }
  const char* payload = bytes.data() + sizeof(DeltaFileHeader);
  const size_t payload_bytes = header.op_count * sizeof(DeltaOpRecord);
  if (Crc32(payload, payload_bytes) != header.ops_crc) {
    return Bad(path, "op payload CRC mismatch");
  }

  EdgeDelta delta;
  delta.base_digest = header.base_digest;
  delta.result_digest = header.result_digest;
  delta.ops.reserve(header.op_count);
  for (uint64_t i = 0; i < header.op_count; ++i) {
    DeltaOpRecord record;
    std::memcpy(&record, payload + i * sizeof(DeltaOpRecord), sizeof(record));
    if (record.kind > static_cast<uint32_t>(DeltaOpKind::kReweight)) {
      return Bad(path, "op " + std::to_string(i) + " has unknown kind " +
                           std::to_string(record.kind));
    }
    DeltaOp op;
    op.kind = static_cast<DeltaOpKind>(record.kind);
    op.source = record.source;
    op.target = record.target;
    op.probability = record.probability;
    delta.ops.push_back(op);
  }
  const Status valid = ValidateDelta(delta);
  if (!valid.ok()) return Bad(path, valid.message());
  if (base_store_digest != nullptr) *base_store_digest = header.base_store_digest;
  return delta;
}

StatusOr<EdgeDelta> LoadDeltaFile(const std::string& path) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open '" + path + "'");
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() == sizeof(magic) &&
        std::memcmp(magic, kDeltaMagic, sizeof(magic)) == 0) {
      return ReadDeltaBinary(path);
    }
  }
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<EdgeDelta> parsed = ParseDeltaText(buffer.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(), "delta '" + path + "': " +
                                              parsed.status().message());
  }
  return parsed;
}

}  // namespace asti
