// SwapWithDelta — epoch minting at the serving boundary: resolve a
// catalog name, apply an EdgeDelta to its current snapshot, and hot-swap
// the minted graph in as the next epoch.
//
// In-flight requests are untouched by construction: they pinned their
// GraphRef (and with it the old epoch's SamplerCache) at admission, so
// they complete bit-identically on the old snapshot while new requests
// resolve the minted epoch with a fresh cache. When the old epoch carried
// a ShardTopology the new epoch is re-planned over the minted graph with
// the same shard count — edge churn moves the balanced cuts, so reusing
// the old plan would both skew shards and fail its digest binding.
// Warm-start collections are never carried across (their sets are a pure
// function of the old snapshot).

#pragma once

#include <string>

#include "api/graph_catalog.h"
#include "delta/apply.h"
#include "delta/edge_delta.h"
#include "util/status.h"

namespace asti {

/// What SwapWithDelta did, for tooling and the churn bench.
struct DeltaSwapResult {
  /// The minted epoch's ref (new requests resolve this).
  GraphRef ref;
  DeltaApplyStats stats;
  /// ForwardCsrDigest of the minted graph.
  uint64_t minted_digest = 0;
  /// True when the entry carried a ShardTopology and a fresh plan was
  /// built over the minted graph (same shard count).
  bool resharded = false;
  /// Wall seconds minting the graph (ApplyDelta + digest + replan) — work
  /// done before the catalog is touched, off the serving path.
  double apply_seconds = 0.0;
  /// Wall seconds inside GraphCatalog::Swap — the only window competing
  /// with concurrent Get()s (the swap-blackout the churn bench reports).
  double swap_seconds = 0.0;
};

/// Applies `delta` to the current snapshot behind `name` and swaps the
/// minted graph in (epoch bump). NotFound for unknown names; forwards
/// ApplyDelta's InvalidArgument on malformed or inapplicable batches, in
/// which case the catalog is untouched.
StatusOr<DeltaSwapResult> SwapWithDelta(GraphCatalog& catalog, const std::string& name,
                                        const EdgeDelta& delta);

}  // namespace asti
