#include "delta/churn.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "delta/apply.h"

namespace asti {

namespace {

/// Probability in (0, 1] with a 20-bit lattice — exact in double, so text
/// round-trips and digest comparisons never hinge on decimal printing.
double RandomProbability(Rng& rng) {
  return static_cast<double>(rng.NextBounded(1u << 20) + 1) / (1u << 20);
}

/// Source node of forward edge `e`: the row whose offset range covers it.
NodeId EdgeSource(const DirectedGraph& graph, EdgeId e) {
  const std::span<const EdgeId> offsets = graph.OutOffsets();
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), e);
  return static_cast<NodeId>(it - offsets.begin() - 1);
}

bool HasEdge(const DirectedGraph& graph, NodeId u, NodeId v) {
  const std::span<const NodeId> row = graph.OutNeighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

}  // namespace

StatusOr<EdgeDelta> MakeRandomDelta(const DirectedGraph& graph, const ChurnSpec& spec,
                                    Rng& rng) {
  const NodeId n = graph.NumNodes();
  const EdgeId m = graph.NumEdges();
  if (n < 2) {
    return Status::InvalidArgument("churn needs at least 2 nodes, graph has " +
                                   std::to_string(n));
  }

  EdgeDelta delta;
  std::set<std::pair<NodeId, NodeId>> used;

  // Deletes and reweights: distinct existing edges (an EdgeId names a
  // unique (source, target) pair in a canonical CSR).
  const size_t structural = std::min<size_t>(spec.deletes + spec.reweights, m);
  const size_t deletes =
      std::min(spec.deletes, structural);  // deletes first, reweights get the rest
  std::set<EdgeId> picked_edges;
  while (picked_edges.size() < structural) {
    picked_edges.insert(static_cast<EdgeId>(rng.NextBounded(m)));
  }
  size_t index = 0;
  for (const EdgeId e : picked_edges) {
    DeltaOp op;
    op.source = EdgeSource(graph, e);
    op.target = graph.EdgeTarget(e);
    if (index < deletes) {
      op.kind = DeltaOpKind::kDelete;
    } else {
      op.kind = DeltaOpKind::kReweight;
      op.probability = RandomProbability(rng);
    }
    used.insert({op.source, op.target});
    delta.ops.push_back(op);
    ++index;
  }

  // Inserts: rejection-sample absent pairs; a dense graph may yield fewer
  // than asked once the attempt budget runs out.
  size_t attempts = 0;
  const size_t max_attempts = 64 * (spec.inserts + 1);
  size_t inserted = 0;
  while (inserted < spec.inserts && attempts < max_attempts) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v || used.count({u, v}) != 0 || HasEdge(graph, u, v)) continue;
    DeltaOp op;
    op.kind = DeltaOpKind::kInsert;
    op.source = u;
    op.target = v;
    op.probability = RandomProbability(rng);
    used.insert({u, v});
    delta.ops.push_back(op);
    ++inserted;
  }

  if (spec.stamp_digests) {
    ASM_RETURN_NOT_OK(StampDigests(graph, delta));
  }
  return delta;
}

}  // namespace asti
