// ASMD v1 — the binary on-disk form of an EdgeDelta, styled after the
// snapshot store's ASMS format: a fixed little-endian header with its own
// CRC, then a flat array of fixed-width op records guarded by a payload
// CRC. Any flipped byte is caught and attributed (header vs ops) before a
// single op is trusted.
//
// Besides the in-memory digests the EdgeDelta itself carries
// (base_digest / result_digest — forward-CSR digests), the file header
// records the ASMS graph_digest of the base *snapshot file* the delta was
// staged next to (0 = unbound). That is the key the incremental store
// (store/delta_store.h) checks so `<name>.delta.asms` can never be applied
// over a swapped-out or foreign `<name>.asms`.

#pragma once

#include <cstdint>
#include <string>

#include "delta/edge_delta.h"
#include "util/status.h"

namespace asti {

inline constexpr char kDeltaMagic[4] = {'A', 'S', 'M', 'D'};
inline constexpr uint32_t kDeltaVersion = 1;

struct DeltaFileHeader {
  char magic[4];             // "ASMD"
  uint32_t version;          // kDeltaVersion
  uint64_t op_count;
  uint64_t base_digest;      // ForwardCsrDigest of the base graph (0 = unbound)
  uint64_t result_digest;    // expected ForwardCsrDigest after apply (0 = unchecked)
  uint64_t base_store_digest;  // ASMS graph_digest of the base snapshot file
  uint32_t ops_crc;          // CRC-32 of the op records
  uint32_t header_crc;       // CRC-32 of this struct with header_crc = 0
  uint64_t reserved[2];
};
static_assert(sizeof(DeltaFileHeader) == 64);

struct DeltaOpRecord {
  uint32_t kind;  // DeltaOpKind
  uint32_t source;
  uint32_t target;
  uint32_t reserved;
  double probability;
};
static_assert(sizeof(DeltaOpRecord) == 24);

/// Writes `delta` to `path` (tmp + rename, like the snapshot writer).
/// `base_store_digest` (0 = unbound) is the ASMS graph_digest of the base
/// snapshot file this delta belongs to. The batch is validated first.
Status WriteDeltaBinary(const EdgeDelta& delta, const std::string& path,
                        uint64_t base_store_digest = 0);

/// Reads an ASMD v1 file. InvalidArgument for truncation, bad magic or
/// version, CRC mismatches, or a batch that fails ValidateDelta; IOError
/// for filesystem failures. `base_store_digest` (nullable) receives the
/// header's base-snapshot binding.
StatusOr<EdgeDelta> ReadDeltaBinary(const std::string& path,
                                    uint64_t* base_store_digest = nullptr);

/// Loads a delta from either serialization: sniffs the ASMD magic and
/// dispatches to ReadDeltaBinary or ParseDeltaText. The asm_tool
/// --apply-delta entry point.
StatusOr<EdgeDelta> LoadDeltaFile(const std::string& path);

}  // namespace asti
