#include "delta/edge_delta.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace asti {

const char* DeltaOpKindName(DeltaOpKind kind) {
  switch (kind) {
    case DeltaOpKind::kInsert:
      return "insert";
    case DeltaOpKind::kDelete:
      return "delete";
    case DeltaOpKind::kReweight:
      return "reweight";
  }
  return "unknown";
}

size_t EdgeDelta::CountKind(DeltaOpKind kind) const {
  return static_cast<size_t>(
      std::count_if(ops.begin(), ops.end(),
                    [kind](const DeltaOp& op) { return op.kind == kind; }));
}

namespace {

std::string OpLabel(const DeltaOp& op) {
  return std::string(DeltaOpKindName(op.kind)) + " " + std::to_string(op.source) +
         " -> " + std::to_string(op.target);
}

}  // namespace

Status ValidateDelta(const EdgeDelta& delta) {
  for (const DeltaOp& op : delta.ops) {
    if (op.kind != DeltaOpKind::kInsert && op.kind != DeltaOpKind::kDelete &&
        op.kind != DeltaOpKind::kReweight) {
      return Status::InvalidArgument("delta op has unknown kind " +
                                     std::to_string(static_cast<int>(op.kind)));
    }
    if (op.source == op.target) {
      return Status::InvalidArgument("delta op is a self-loop: " + OpLabel(op));
    }
    if (op.kind != DeltaOpKind::kDelete &&
        (!(op.probability > 0.0) || op.probability > 1.0)) {
      return Status::InvalidArgument("delta op probability must be in (0, 1]: " +
                                     OpLabel(op) + " p=" +
                                     std::to_string(op.probability));
    }
  }
  // One op per edge: conflicting ops in a single batch have no defined
  // apply order, so they are rejected rather than silently resolved.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(delta.ops.size());
  for (const DeltaOp& op : delta.ops) pairs.emplace_back(op.source, op.target);
  std::sort(pairs.begin(), pairs.end());
  const auto dup = std::adjacent_find(pairs.begin(), pairs.end());
  if (dup != pairs.end()) {
    return Status::InvalidArgument(
        "delta has multiple ops for edge " + std::to_string(dup->first) + " -> " +
        std::to_string(dup->second));
  }
  return Status::OK();
}

namespace {

Status LineError(size_t line_number, const std::string& msg) {
  return Status::InvalidArgument("delta text line " + std::to_string(line_number) +
                                 ": " + msg);
}

bool ParseHexOrDec(const std::string& token, uint64_t& out) {
  try {
    size_t used = 0;
    out = std::stoull(token, &used, 0);  // base 0: 0x-prefixed hex or decimal
    return used == token.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

StatusOr<EdgeDelta> ParseDeltaText(const std::string& text) {
  EdgeDelta delta;
  std::istringstream stream(text);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(stream, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word)) continue;              // blank
    if (word[0] == '#' || word[0] == '%') continue;  // comment
    if (!saw_header) {
      std::string version;
      if (word != "delta" || !(fields >> version) || version != "v1") {
        return LineError(line_number, "expected header 'delta v1'");
      }
      saw_header = true;
      continue;
    }
    if (word == "base_digest" || word == "result_digest") {
      std::string value;
      uint64_t digest = 0;
      if (!(fields >> value) || !ParseHexOrDec(value, digest)) {
        return LineError(line_number, "expected '" + word + " <integer>'");
      }
      (word == "base_digest" ? delta.base_digest : delta.result_digest) = digest;
      continue;
    }
    DeltaOp op;
    if (word == "+" || word == "insert") {
      op.kind = DeltaOpKind::kInsert;
    } else if (word == "-" || word == "delete") {
      op.kind = DeltaOpKind::kDelete;
    } else if (word == "~" || word == "reweight") {
      op.kind = DeltaOpKind::kReweight;
    } else {
      return LineError(line_number, "unknown op '" + word + "' (want + / - / ~)");
    }
    int64_t source = -1;
    int64_t target = -1;
    if (!(fields >> source >> target) || source < 0 || target < 0 ||
        source > std::numeric_limits<NodeId>::max() ||
        target > std::numeric_limits<NodeId>::max()) {
      return LineError(line_number, "expected two non-negative node ids");
    }
    op.source = static_cast<NodeId>(source);
    op.target = static_cast<NodeId>(target);
    if (op.kind != DeltaOpKind::kDelete) {
      // Read the token as text and strtod it: strtod parses the hexfloat
      // form FormatDeltaText emits (istream extraction does not, portably).
      std::string prob;
      if (!(fields >> prob)) {
        return LineError(line_number, "expected a probability");
      }
      char* end = nullptr;
      op.probability = std::strtod(prob.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return LineError(line_number, "bad probability '" + prob + "'");
      }
    }
    std::string extra;
    if (fields >> extra) {
      return LineError(line_number, "trailing token '" + extra + "'");
    }
    delta.ops.push_back(op);
  }
  if (!saw_header) {
    return Status::InvalidArgument("delta text: missing 'delta v1' header");
  }
  ASM_RETURN_NOT_OK(ValidateDelta(delta));
  return delta;
}

std::string FormatDeltaText(const EdgeDelta& delta) {
  std::ostringstream out;
  out << "delta v1\n";
  char buffer[32];
  if (delta.base_digest != 0) {
    std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                  static_cast<unsigned long long>(delta.base_digest));
    out << "base_digest " << buffer << "\n";
  }
  if (delta.result_digest != 0) {
    std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                  static_cast<unsigned long long>(delta.result_digest));
    out << "result_digest " << buffer << "\n";
  }
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaOpKind::kInsert:
        out << "+ ";
        break;
      case DeltaOpKind::kDelete:
        out << "- ";
        break;
      case DeltaOpKind::kReweight:
        out << "~ ";
        break;
    }
    out << op.source << " " << op.target;
    if (op.kind != DeltaOpKind::kDelete) {
      // Probabilities round-trip exactly: hexfloat is bit-precise and
      // std::istream reads it back (the parse side uses operator>>).
      std::snprintf(buffer, sizeof(buffer), " %a", op.probability);
      out << buffer;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace asti
