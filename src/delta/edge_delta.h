// EdgeDelta — the validated edge-mutation batch that mints the next
// serving epoch (src/delta/README.md has the full contract).
//
// A delta is an ordered-irrelevant set of edge operations against one base
// graph snapshot: insert a new edge, delete an existing one, or reweight
// one in place. Node count is fixed per epoch — deltas mutate edges only.
// The batch binds to its base through the base's forward-CSR digest
// (shard/partition.h), so a delta staged against epoch e can never be
// applied to a different snapshot without an InvalidArgument; it may also
// carry the expected post-apply digest, which ApplyDelta re-checks.
//
// Two interchangeable serializations (both readable by asm_tool
// --apply-delta): a line-oriented text form for hand-written batches and
// traces (this header) and a CRC-guarded binary form for pipelines
// (delta_io.h).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace asti {

enum class DeltaOpKind : uint8_t {
  kInsert = 0,    // add edge (source -> target) with `probability`
  kDelete = 1,    // remove edge (source -> target); probability ignored
  kReweight = 2,  // set (source -> target)'s probability to `probability`
};

/// Short lowercase name ("insert" / "delete" / "reweight").
const char* DeltaOpKindName(DeltaOpKind kind);

/// One edge mutation.
struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kInsert;
  NodeId source = 0;
  NodeId target = 0;
  /// New propagation probability for insert/reweight; 0 for delete.
  double probability = 0.0;

  friend bool operator==(const DeltaOp&, const DeltaOp&) = default;
};

/// A batch of edge mutations against one base snapshot.
struct EdgeDelta {
  /// ForwardCsrDigest of the base graph this batch was staged against;
  /// 0 = unbound (applies to any graph whose edges satisfy the ops).
  uint64_t base_digest = 0;
  /// Expected ForwardCsrDigest of the minted graph; 0 = unchecked. Stamped
  /// by StampDigests / the delta store so a loaded delta proves its apply
  /// produced the epoch it was staged for.
  uint64_t result_digest = 0;
  std::vector<DeltaOp> ops;

  size_t CountKind(DeltaOpKind kind) const;

  friend bool operator==(const EdgeDelta&, const EdgeDelta&) = default;
};

/// Graph-independent structural validation: no self-loops, probabilities
/// in (0, 1] for insert/reweight, and at most one op per (source, target)
/// pair — conflicting ops in one batch have no defined apply order.
/// InvalidArgument naming the offending op. ApplyDelta calls this first;
/// graph-dependent checks (endpoint range, edge presence/absence) happen
/// during apply.
Status ValidateDelta(const EdgeDelta& delta);

// --- Text format -----------------------------------------------------------
//
//   # comment (also '%')
//   delta v1
//   base_digest 0x<hex>        (optional)
//   result_digest 0x<hex>      (optional)
//   + <source> <target> <probability>
//   - <source> <target>
//   ~ <source> <target> <probability>
//
// Word aliases "insert" / "delete" / "reweight" are accepted in place of
// the symbols. The "delta v1" line must be the first significant line.

/// Parses the text form. InvalidArgument with a line number on any
/// malformed line; the parsed batch is additionally run through
/// ValidateDelta.
StatusOr<EdgeDelta> ParseDeltaText(const std::string& text);

/// Serializes to the text form (symbols, one op per line; digests emitted
/// only when non-zero). ParseDeltaText(FormatDeltaText(d)) == d.
std::string FormatDeltaText(const EdgeDelta& delta);

}  // namespace asti
