// ApplyDelta — mint the next epoch's DirectedGraph from a base snapshot
// plus an EdgeDelta batch, without re-sorting the untouched edges.
//
// The invariant that makes deltas safe to serve: the minted graph is
// DIGEST-IDENTICAL (shard/partition.h ForwardCsrDigest, and in fact
// bit-identical across all seven CSR arrays) to a from-scratch
// GraphBuilder build of the mutated edge list. Touched adjacency rows are
// merged in target order (the builder's canonical (source, target) sort
// restricted to one row); untouched row runs are block-copied; the
// reverse CSR is derived with the exact counting sort every other build
// path uses (BuildReverseCsr). Because the bytes are what a rebuild would
// produce, every downstream determinism contract — sampler-cache streams,
// shard plans, snapshot digests — carries over unchanged.
//
// Structural sharing: a reweight-only batch (no inserts or deletes) keeps
// the CSR shape, so the minted graph SHARES the base's offsets / targets /
// sources / edge-id arrays by span (pinning the base storage — including
// an mmap'd snapshot file — via its keepalive) and materializes only the
// two probability arrays. Shape-changing batches rebuild the arrays with
// run-level copies of untouched rows.

#pragma once

#include "delta/edge_delta.h"
#include "graph/graph.h"
#include "util/status.h"

namespace asti {

/// What an apply did; informational (tooling, bench, tests).
struct DeltaApplyStats {
  size_t inserted = 0;
  size_t deleted = 0;
  size_t reweighted = 0;
  /// Forward rows whose adjacency run was merged (had at least one op).
  size_t rows_touched = 0;
  /// True when the batch was reweight-only and the minted graph spans the
  /// base's structure arrays instead of copying them.
  bool shared_structure = false;
};

/// Applies `delta` to `base` and returns the minted graph.
/// InvalidArgument when the batch fails ValidateDelta, when
/// delta.base_digest is non-zero and does not match ForwardCsrDigest(base),
/// when an op's endpoint is out of range, when an insert's edge already
/// exists, when a delete/reweight's edge does not, or when a non-zero
/// delta.result_digest disagrees with the minted graph. The base must be a
/// canonical CSR (rows sorted by target — every library build path
/// produces this). The minted graph keeps the base alive only for
/// reweight-only batches (span sharing); otherwise it owns fresh storage.
StatusOr<DirectedGraph> ApplyDelta(const DirectedGraph& base, const EdgeDelta& delta,
                                   DeltaApplyStats* stats = nullptr);

/// Reference implementation of the digest-identity contract: mutates the
/// base's flat edge list and rebuilds through GraphBuilder. O(m log m);
/// tests and the churn bench compare ApplyDelta against this.
StatusOr<DirectedGraph> ApplyDeltaByRebuild(const DirectedGraph& base,
                                            const EdgeDelta& delta);

/// Stamps `delta.base_digest` from `base` and `delta.result_digest` from a
/// trial apply, binding the batch to exactly this epoch transition.
/// Forwards ApplyDelta's errors.
Status StampDigests(const DirectedGraph& base, EdgeDelta& delta);

}  // namespace asti
