#include "delta/apply.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "shard/partition.h"

namespace asti {

namespace {

std::string EdgeLabel(NodeId source, NodeId target) {
  return std::to_string(source) + " -> " + std::to_string(target);
}

Status CheckBaseBinding(const DirectedGraph& base, const EdgeDelta& delta) {
  if (delta.base_digest == 0) return Status::OK();
  const uint64_t actual = ForwardCsrDigest(base);
  if (actual != delta.base_digest) {
    return Status::InvalidArgument(
        "delta is bound to a different base graph (delta base_digest " +
        std::to_string(delta.base_digest) + ", graph digest " +
        std::to_string(actual) + ")");
  }
  return Status::OK();
}

Status CheckResultBinding(const DirectedGraph& minted, const EdgeDelta& delta) {
  if (delta.result_digest == 0) return Status::OK();
  const uint64_t actual = ForwardCsrDigest(minted);
  if (actual != delta.result_digest) {
    return Status::InvalidArgument(
        "delta apply produced digest " + std::to_string(actual) +
        " but the batch expects result_digest " + std::to_string(delta.result_digest) +
        " (was it staged against a different base?)");
  }
  return Status::OK();
}

Status CheckEndpoints(const DirectedGraph& base, const EdgeDelta& delta) {
  const NodeId n = base.NumNodes();
  for (const DeltaOp& op : delta.ops) {
    if (op.source >= n || op.target >= n) {
      return Status::InvalidArgument(
          std::string(DeltaOpKindName(op.kind)) + " endpoint out of range for a " +
          std::to_string(n) + "-node graph: " + EdgeLabel(op.source, op.target));
    }
  }
  return Status::OK();
}

/// Keepalive for the reweight-only fast path: pins the base graph (and
/// through it an mmap'd snapshot, if that is where the base lives) while
/// owning the only two arrays that changed.
struct SharedProbsStorage {
  DirectedGraph base;
  std::vector<double> out_probs;
  std::vector<double> in_probs;
};

/// Reweight-only batches keep the CSR shape: share every structure array
/// with the base by span, rewrite the two probability arrays.
StatusOr<DirectedGraph> ApplyReweightOnly(const DirectedGraph& base,
                                          std::span<const DeltaOp> ops,
                                          DeltaApplyStats* stats) {
  auto keep = std::make_shared<SharedProbsStorage>();
  keep->base = base;
  keep->out_probs.assign(base.OutProbs().begin(), base.OutProbs().end());
  for (const DeltaOp& op : ops) {
    const std::span<const NodeId> row = base.OutNeighbors(op.source);
    const auto it = std::lower_bound(row.begin(), row.end(), op.target);
    if (it == row.end() || *it != op.target) {
      return Status::InvalidArgument("reweight of absent edge " +
                                     EdgeLabel(op.source, op.target));
    }
    const size_t slot = base.FirstOutEdge(op.source) + (it - row.begin());
    keep->out_probs[slot] = op.probability;
    if (stats != nullptr) ++stats->reweighted;
  }
  // The reverse probabilities mirror the forward ones through in_edge_ids —
  // exactly how the counting sort fills them, so unchanged slots keep their
  // base bit patterns and a rebuild would produce these same bytes.
  const std::span<const EdgeId> edge_ids = base.InEdgeIdsFlat();
  keep->in_probs.resize(edge_ids.size());
  for (size_t i = 0; i < edge_ids.size(); ++i) {
    keep->in_probs[i] = keep->out_probs[edge_ids[i]];
  }
  if (stats != nullptr) stats->shared_structure = true;
  const std::span<const double> out_probs(keep->out_probs);
  const std::span<const double> in_probs(keep->in_probs);
  return DirectedGraph(base.NumNodes(), base.OutOffsets(), base.OutTargets(), out_probs,
                       base.InOffsets(), base.InSources(), in_probs,
                       base.InEdgeIdsFlat(), std::move(keep));
}

/// Shape-changing batches: merge touched rows in target order, block-copy
/// untouched row runs, rebuild the reverse CSR with the shared counting
/// sort. `ops` is sorted by (source, target).
StatusOr<DirectedGraph> ApplyRebuildRows(const DirectedGraph& base,
                                         std::span<const DeltaOp> ops,
                                         DeltaApplyStats* stats) {
  const NodeId n = base.NumNodes();
  const std::span<const EdgeId> off = base.OutOffsets();
  const std::span<const NodeId> targets = base.OutTargets();
  const std::span<const double> probs = base.OutProbs();

  GraphStorage csr;
  csr.out_offsets.assign(size_t{n} + 1, 0);
  csr.out_targets.reserve(targets.size() + ops.size());
  csr.out_probs.reserve(targets.size() + ops.size());

  size_t op_i = 0;
  NodeId u = 0;
  while (u < n) {
    if (op_i == ops.size() || ops[op_i].source > u) {
      // Untouched run [u, run_end): one block copy per array.
      const NodeId run_end = op_i == ops.size() ? n : ops[op_i].source;
      csr.out_targets.insert(csr.out_targets.end(), targets.begin() + off[u],
                             targets.begin() + off[run_end]);
      csr.out_probs.insert(csr.out_probs.end(), probs.begin() + off[u],
                           probs.begin() + off[run_end]);
      const EdgeId shift = csr.out_offsets[u] - off[u];
      for (NodeId v = u; v < run_end; ++v) {
        csr.out_offsets[v + 1] = off[v + 1] + shift;
      }
      u = run_end;
      continue;
    }
    // Merge row u's edges (sorted by target) with its ops (same order).
    size_t op_end = op_i;
    while (op_end < ops.size() && ops[op_end].source == u) ++op_end;
    const std::span<const NodeId> row_t = base.OutNeighbors(u);
    const std::span<const double> row_p = base.OutProbabilities(u);
    size_t bi = 0;
    size_t oi = op_i;
    while (bi < row_t.size() || oi < op_end) {
      if (oi == op_end || (bi < row_t.size() && row_t[bi] < ops[oi].target)) {
        csr.out_targets.push_back(row_t[bi]);
        csr.out_probs.push_back(row_p[bi]);
        ++bi;
      } else if (bi == row_t.size() || ops[oi].target < row_t[bi]) {
        // Op against an edge the base does not have.
        if (ops[oi].kind != DeltaOpKind::kInsert) {
          return Status::InvalidArgument(
              std::string(DeltaOpKindName(ops[oi].kind)) + " of absent edge " +
              EdgeLabel(u, ops[oi].target));
        }
        csr.out_targets.push_back(ops[oi].target);
        csr.out_probs.push_back(ops[oi].probability);
        if (stats != nullptr) ++stats->inserted;
        ++oi;
      } else {
        // Op against an existing edge.
        switch (ops[oi].kind) {
          case DeltaOpKind::kInsert:
            return Status::InvalidArgument("insert of existing edge " +
                                           EdgeLabel(u, ops[oi].target));
          case DeltaOpKind::kDelete:
            if (stats != nullptr) ++stats->deleted;
            break;
          case DeltaOpKind::kReweight:
            csr.out_targets.push_back(ops[oi].target);
            csr.out_probs.push_back(ops[oi].probability);
            if (stats != nullptr) ++stats->reweighted;
            break;
        }
        ++bi;
        ++oi;
      }
    }
    csr.out_offsets[u + 1] = static_cast<EdgeId>(csr.out_targets.size());
    op_i = op_end;
    ++u;
  }

  BuildReverseCsr(csr);
  return DirectedGraph(n, std::make_shared<const GraphStorage>(std::move(csr)));
}

}  // namespace

StatusOr<DirectedGraph> ApplyDelta(const DirectedGraph& base, const EdgeDelta& delta,
                                   DeltaApplyStats* stats) {
  ASM_RETURN_NOT_OK(ValidateDelta(delta));
  ASM_RETURN_NOT_OK(CheckBaseBinding(base, delta));
  ASM_RETURN_NOT_OK(CheckEndpoints(base, delta));

  std::vector<DeltaOp> ops(delta.ops.begin(), delta.ops.end());
  std::sort(ops.begin(), ops.end(), [](const DeltaOp& a, const DeltaOp& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  });
  DeltaApplyStats local;
  DeltaApplyStats* out = stats != nullptr ? stats : &local;
  *out = DeltaApplyStats{};
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i == 0 || ops[i].source != ops[i - 1].source) ++out->rows_touched;
  }

  const bool shape_preserving =
      std::all_of(ops.begin(), ops.end(), [](const DeltaOp& op) {
        return op.kind == DeltaOpKind::kReweight;
      });
  StatusOr<DirectedGraph> minted =
      shape_preserving ? ApplyReweightOnly(base, ops, out)
                       : ApplyRebuildRows(base, ops, out);
  if (!minted.ok()) return minted.status();
  ASM_RETURN_NOT_OK(CheckResultBinding(*minted, delta));
  return minted;
}

StatusOr<DirectedGraph> ApplyDeltaByRebuild(const DirectedGraph& base,
                                            const EdgeDelta& delta) {
  ASM_RETURN_NOT_OK(ValidateDelta(delta));
  ASM_RETURN_NOT_OK(CheckBaseBinding(base, delta));
  ASM_RETURN_NOT_OK(CheckEndpoints(base, delta));

  std::map<std::pair<NodeId, NodeId>, double> edges;
  for (const Edge& e : base.ToEdgeList()) {
    edges[{e.source, e.target}] = e.probability;
  }
  for (const DeltaOp& op : delta.ops) {
    const auto key = std::make_pair(op.source, op.target);
    const auto it = edges.find(key);
    switch (op.kind) {
      case DeltaOpKind::kInsert:
        if (it != edges.end()) {
          return Status::InvalidArgument("insert of existing edge " +
                                         EdgeLabel(op.source, op.target));
        }
        edges[key] = op.probability;
        break;
      case DeltaOpKind::kDelete:
        if (it == edges.end()) {
          return Status::InvalidArgument("delete of absent edge " +
                                         EdgeLabel(op.source, op.target));
        }
        edges.erase(it);
        break;
      case DeltaOpKind::kReweight:
        if (it == edges.end()) {
          return Status::InvalidArgument("reweight of absent edge " +
                                         EdgeLabel(op.source, op.target));
        }
        it->second = op.probability;
        break;
    }
  }
  GraphBuilder builder(base.NumNodes());
  for (const auto& [key, probability] : edges) {
    ASM_RETURN_NOT_OK(builder.AddEdge(key.first, key.second, probability));
  }
  ASM_ASSIGN_OR_RETURN(DirectedGraph rebuilt, builder.Build());
  ASM_RETURN_NOT_OK(CheckResultBinding(rebuilt, delta));
  return rebuilt;
}

Status StampDigests(const DirectedGraph& base, EdgeDelta& delta) {
  delta.base_digest = ForwardCsrDigest(base);
  delta.result_digest = 0;
  ASM_ASSIGN_OR_RETURN(const DirectedGraph minted, ApplyDelta(base, delta));
  delta.result_digest = ForwardCsrDigest(minted);
  return Status::OK();
}

}  // namespace asti
