// Deterministic random EdgeDelta generation — the mutation source of the
// open-loop churn harness (bench_engine_throughput) and the delta tests.
// Pure function of (graph, spec, rng state): the same seed replays the
// same mutation trace, which is what lets a churn run's end state be
// checked against a from-scratch rebuild.

#pragma once

#include "delta/edge_delta.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace asti {

struct ChurnSpec {
  /// Requested op counts. Deletes/reweights are clamped to the edges
  /// available (each op consumes a distinct edge); inserts give up after a
  /// bounded number of rejection-sampling attempts on dense graphs — a
  /// generated batch may be smaller than asked, never invalid.
  size_t inserts = 8;
  size_t deletes = 8;
  size_t reweights = 8;
  /// Stamp base_digest/result_digest (binds the batch to this epoch).
  bool stamp_digests = true;
};

/// A valid batch against `graph`: deletes and reweights pick distinct
/// existing edges, inserts pick currently-absent non-self-loop pairs, no
/// two ops share an edge. InvalidArgument only for graphs with < 2 nodes.
StatusOr<EdgeDelta> MakeRandomDelta(const DirectedGraph& graph, const ChurnSpec& spec,
                                    Rng& rng);

}  // namespace asti
