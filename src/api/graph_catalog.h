// GraphCatalog — thread-safe registry of immutable, ref-counted graph
// snapshots, the multi-graph serving front of src/api/.
//
// The paper frames adaptive seed minimization as a query over
// (graph, model, η, ε); a resident service must therefore serve queries
// against *many* named datasets concurrently and replace any of them
// without downtime. The catalog holds one entry per name; each entry is a
// GraphRef: a `shared_ptr<const DirectedGraph>` snapshot plus metadata
// (name, epoch, node/edge counts, the weight scheme the snapshot was
// built with). Snapshots are immutable by construction — nothing in the
// library mutates a DirectedGraph after build — so a GraphRef handed out
// by Get() stays valid forever, pinned by its shared_ptr, no matter what
// the catalog does afterwards:
//
//   * Register(name, snapshot)  — adds a new name at epoch 1; a second
//     Register of the same name is FailedPrecondition (use Swap).
//   * Get(name)                 — resolves a name to its current GraphRef
//     (NotFound for unknown names). Callers that hold the ref "pin" the
//     snapshot: in-flight requests keep executing on it bit-identically
//     even if the name is swapped or retired mid-run.
//   * Swap(name, snapshot)      — replaces the snapshot behind a name and
//     bumps its epoch; subsequent Get()s observe the new epoch, old refs
//     keep their old snapshot alive until released (hot-swap without
//     invalidating executing work).
//   * Retire(name)              — removes the name; the snapshot is freed
//     when the last outstanding GraphRef drops.
//
// Every member is safe to call concurrently (one mutex over the name
// table; snapshot payloads are never touched under the lock beyond the
// shared_ptr copy). The catalog also carries a monotonic version counter,
// bumped by every successful mutation, so engines can cheaply detect "the
// catalog changed since I last cached per-graph state".

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/status.h"

namespace asti {

class CollectionWarmSource;  // sampling/sampler_cache.h
struct ShardTopology;        // shard/topology.h

/// Immutable serving metadata for one (name, epoch) snapshot, built once
/// at Register/Swap and shared by every GraphRef handed out for that
/// epoch. Sharing (instead of copying the strings into each ref) is what
/// keeps Get() to two shared_ptr copies under the catalog lock — the
/// string copies used to show up in the mixed-workload bench at high
/// client counts.
struct GraphMeta {
  std::string name;
  /// 1 on first Register; bumped by every Swap of this name. A result
  /// produced against epoch e is reproducible against that epoch's
  /// snapshot only — SolveResult records (graph_name, graph_epoch).
  uint64_t epoch = 0;
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  /// The diffusion-weight scheme the snapshot's edge probabilities were
  /// built with (informational; surfaced by --list-graphs style tooling).
  WeightScheme weight_scheme = WeightScheme::kWeightedCascade;
  /// Persisted sealed RR-collection prefixes shipped with the snapshot
  /// (null for graphs registered from memory). The engine hands this to
  /// the epoch's SamplerCache so new serving state starts warm from disk.
  std::shared_ptr<const CollectionWarmSource> warm_collections;
  /// Sharding description for this epoch (null = unsharded). The engine
  /// routes this epoch's RR-set generation across per-shard pools when
  /// set; results are bit-identical either way, so a Swap may freely
  /// change a name between sharded and unsharded topologies.
  std::shared_ptr<const ShardTopology> shard_topology;
};

/// One immutable graph snapshot plus its serving metadata. Value type:
/// copying a GraphRef copies two shared_ptrs (cheap) and extends the pin.
struct GraphRef {
  std::shared_ptr<const DirectedGraph> snapshot;
  std::shared_ptr<const GraphMeta> meta;

  bool valid() const { return snapshot != nullptr; }
  const DirectedGraph& graph() const { return *snapshot; }
  const std::string& name() const { return meta->name; }
  uint64_t epoch() const { return meta->epoch; }
  NodeId num_nodes() const { return meta->num_nodes; }
  EdgeId num_edges() const { return meta->num_edges; }
  WeightScheme weight_scheme() const { return meta->weight_scheme; }
  const std::shared_ptr<const CollectionWarmSource>& warm_collections() const {
    return meta->warm_collections;
  }
  const std::shared_ptr<const ShardTopology>& shard_topology() const {
    return meta->shard_topology;
  }
};

class GraphCatalog {
 public:
  GraphCatalog() = default;
  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Adds `snapshot` under `name` at epoch 1. InvalidArgument for an empty
  /// name or null snapshot; FailedPrecondition if the name is already
  /// registered (replacement must be an explicit Swap). Returns the
  /// registered ref. `warm` (nullable) attaches persisted sealed
  /// RR-collection prefixes — the snapshot-store registration path.
  /// `shards` (nullable) attaches a ShardTopology: the engine then fans
  /// this entry's RR-set generation across per-shard pools (src/shard/).
  StatusOr<GraphRef> Register(const std::string& name,
                              std::shared_ptr<const DirectedGraph> snapshot,
                              WeightScheme scheme = WeightScheme::kWeightedCascade,
                              std::shared_ptr<const CollectionWarmSource> warm = nullptr,
                              std::shared_ptr<const ShardTopology> shards = nullptr);

  /// Convenience overload taking the graph by value (moves it into a
  /// shared snapshot) — the common "I just built this graph" path.
  StatusOr<GraphRef> Register(const std::string& name, DirectedGraph graph,
                              WeightScheme scheme = WeightScheme::kWeightedCascade);

  /// Current ref for `name`, or NotFound. The returned ref pins its
  /// snapshot for as long as the caller holds it.
  StatusOr<GraphRef> Get(const std::string& name) const;

  /// Replaces the snapshot behind an existing name, bumping its epoch.
  /// NotFound for unregistered names, InvalidArgument for a null snapshot.
  /// Outstanding refs to the previous epoch stay valid. Returns the new ref.
  StatusOr<GraphRef> Swap(const std::string& name,
                          std::shared_ptr<const DirectedGraph> snapshot,
                          WeightScheme scheme = WeightScheme::kWeightedCascade,
                          std::shared_ptr<const CollectionWarmSource> warm = nullptr,
                          std::shared_ptr<const ShardTopology> shards = nullptr);

  /// By-value Swap convenience, mirroring Register.
  StatusOr<GraphRef> Swap(const std::string& name, DirectedGraph graph,
                          WeightScheme scheme = WeightScheme::kWeightedCascade);

  /// Removes `name` from the catalog (NotFound if absent). The snapshot is
  /// freed when the last outstanding GraphRef releases it. Re-registering
  /// the name later starts again at epoch 1.
  Status Retire(const std::string& name);

  /// Snapshot of every registered ref, in name order.
  std::vector<GraphRef> List() const;

  size_t size() const;

  /// Monotonic mutation counter: bumped by every successful Register /
  /// Swap / Retire. Engines compare it against the value they last saw to
  /// decide whether cached per-graph state needs revalidation.
  uint64_t version() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, GraphRef> entries_;
  uint64_t version_ = 0;
};

/// Non-owning snapshot view over a caller-owned graph, for synchronous
/// scoped serving (the bench/test harnesses): the caller guarantees
/// `graph` outlives every ref derived from it. Hot-swap / retire safety
/// beyond that scope requires owning snapshots — production registration
/// should move the graph into the catalog instead.
inline std::shared_ptr<const DirectedGraph> BorrowSnapshot(const DirectedGraph& graph) {
  return std::shared_ptr<const DirectedGraph>(std::shared_ptr<const DirectedGraph>(),
                                              &graph);
}

/// Builds the surrogate for `id` (deterministic in (id, scale, seed)) and
/// registers it under its canonical lowercase name ("nethept", ...).
/// Forwards Register's errors (e.g. FailedPrecondition when the name is
/// already present).
StatusOr<GraphRef> RegisterSurrogate(GraphCatalog& catalog, DatasetId id,
                                     double scale = 1.0, uint64_t seed = 7,
                                     WeightScheme scheme = WeightScheme::kWeightedCascade);

}  // namespace asti
