// Register-from-file: the bridge between the snapshot store (src/store/)
// and the serving catalog (graph_catalog.h).
//
// RegisterSnapshotFile / SwapSnapshotFile open an ASMS snapshot read-only
// (mmap + structural verification — O(section count), not O(m)) and
// install the resulting zero-copy graph into the catalog, carrying the
// file's persisted sealed RR-collection prefixes as the entry's
// CollectionWarmSource. The first request against the registered graph
// therefore starts with a warm sampler cache: cache entries whose key the
// file covers adopt the persisted prefix instead of sampling from scratch,
// bit-identically to cold generation (the loader certifies stream seed,
// contract version, and graph digest before offering anything).
//
// Lifecycle: the mapping is pinned by the catalog entry, by every GraphRef
// handed out, and by every collection chunk adopted from it. Swapping or
// retiring the name while solves are in flight is safe — the file stays
// mapped until the last pin drops. SeedMinEngine::SaveSnapshot closes the
// loop: it exports a serving graph plus its current sealed cache prefixes
// back into a file this path can re-register after a restart.

#pragma once

#include <string>

#include "api/graph_catalog.h"
#include "store/snapshot_store.h"
#include "util/status.h"

namespace asti {

/// Opens the ASMS snapshot at `path` and Registers it under its embedded
/// graph name — or `override_name`, when non-empty. Registration cost is
/// the snapshot's structural verification (page faults on the header and
/// section table), independent of graph size. Forwards OpenSnapshot's
/// errors (InvalidArgument / IOError) and Register's (FailedPrecondition
/// for an already-registered name).
StatusOr<GraphRef> RegisterSnapshotFile(
    GraphCatalog& catalog, const std::string& path,
    store::SnapshotVerify verify = store::SnapshotVerify::kStructural,
    const std::string& override_name = "");

/// Same, but hot-swaps an existing catalog entry (epoch bump). In-flight
/// requests pinned to the old epoch are unaffected; new requests see the
/// mapped graph and its warm collections.
StatusOr<GraphRef> SwapSnapshotFile(
    GraphCatalog& catalog, const std::string& path,
    store::SnapshotVerify verify = store::SnapshotVerify::kStructural,
    const std::string& override_name = "");

}  // namespace asti
