// SeedMinEngine — the one façade over every seed-minimization algorithm.
//
// A resident engine owns a DirectedGraph reference, one shared ThreadPool,
// and an admission-controlled serving core, and serves uniform
// SolveRequests: validation at the API boundary (Status::InvalidArgument
// instead of CHECK-crashes), selector construction through
// AlgorithmRegistry, the §6 evaluation protocol (hidden realizations
// shared across algorithms for a given seed), and per-request
// deadlines/cancellation (Status::DeadlineExceeded / Status::Cancelled).
//
// Concurrency model: Solve runs on the caller's thread and fans sampling/
// coverage work onto the shared pool. SubmitAsync admits the request into
// a bounded queue (Options::max_queue_depth / max_inflight) served by a
// small fixed pool of driver threads (Options::num_drivers) — never one
// thread per request — so a burst beyond capacity is answered with
// Status::ResourceExhausted (or blocks, with Options::block_when_full)
// instead of spawning unbounded threads onto the shared pool. Every RNG
// stream serving a request is derived from request.seed alone, so
// *completed* results are bit-identical — in every field except the
// wall-clock timings (trace seconds, aggregate mean_seconds), which
// measure the run that produced them — whether a request runs solo, in
// SolveBatch, queued behind other requests, or interleaved with other
// clients, at any pool size != 1 (pool size 1 uses the sequential
// reference sampling path, which is deterministic too but follows the
// paper's in-place stream protocol). See src/api/README.md.

#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "api/admission_queue.h"
#include "api/request.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace asti {

/// Resident query engine over one graph, one worker pool, and one
/// admission queue.
class SeedMinEngine {
 public:
  struct Options {
    /// Shared sampling/coverage workers for all requests: 1 = sequential
    /// reference path (no pool), 0 = one per hardware thread, k = k workers.
    size_t num_threads = 1;
    /// Driver threads executing admitted requests (the async serving
    /// concurrency): 0 = one per hardware thread, k = exactly k drivers.
    /// Drivers are spawned lazily on the first SubmitAsync/SolveBatch and
    /// block on the shared pool's TaskGroups, never run on pool workers.
    size_t num_drivers = 4;
    /// Waiting-room slots beyond the executing drivers: admission capacity
    /// is num_drivers + max_queue_depth (unless max_inflight overrides).
    /// A burst of capacity + k submissions yields exactly k rejections.
    size_t max_queue_depth = 64;
    /// Hard cap on admitted (queued + executing) requests; 0 derives it as
    /// num_drivers + max_queue_depth.
    size_t max_inflight = 0;
    /// Admission policy when the queue is full: false = SubmitAsync
    /// resolves to Status::ResourceExhausted immediately (backpressure the
    /// client can see), true = SubmitAsync blocks the calling thread until
    /// a slot frees. SolveBatch always blocks (a synchronous batch caller
    /// *is* the backpressure), so batches larger than capacity still
    /// complete.
    bool block_when_full = false;
  };

  /// The graph must outlive the engine.
  explicit SeedMinEngine(const DirectedGraph& graph) : SeedMinEngine(graph, Options{}) {}
  SeedMinEngine(const DirectedGraph& graph, Options options);

  /// Destruction with requests still in the system: requests a driver is
  /// already executing DRAIN (run to completion, futures resolve normally);
  /// requests still waiting in the queue ABORT (futures resolve to
  /// Status::Cancelled without executing). Blocked producers are woken and
  /// rejected. Callers must not race new submissions against destruction.
  ~SeedMinEngine();

  const DirectedGraph& graph() const { return *graph_; }

  /// The shared pool, or nullptr in sequential mode.
  ThreadPool* pool() { return pool_.get(); }

  /// Admission counters (admitted / rejected / completed since
  /// construction) — the serving front's observability hook.
  AdmissionQueue::Stats admission_stats() const { return queue_->stats(); }

  /// Checks every request field against the graph; OK iff Solve would run
  /// (deadline/cancellation state is not consulted — a valid request may
  /// still come back Cancelled or DeadlineExceeded).
  Status Validate(const SolveRequest& request) const;

  /// Serves one request synchronously on the caller's thread, bypassing
  /// admission (the caller's thread is the concurrency bound). Honors
  /// request.deadline and request.cancel.
  StatusOr<SolveResult> Solve(const SolveRequest& request);

  /// Admits one request into the bounded queue; a driver thread executes
  /// it (sampling still fans out to the shared pool). The future resolves
  /// to the same StatusOr Solve would return, or to ResourceExhausted when
  /// admission is full (never blocks unless Options::block_when_full), or
  /// to Cancelled when the engine is destroyed before execution starts.
  /// Invalid requests and already-expired deadlines resolve immediately
  /// without consuming admission capacity. The engine (and its graph) must
  /// outlive every outstanding future.
  std::future<StatusOr<SolveResult>> SubmitAsync(SolveRequest request);

  /// Serves a batch through the admission queue with *blocking* admission
  /// (never rejects; the calling thread waits for slots) and gathers the
  /// results in request order. result[i] is bit-identical to
  /// Solve(requests[i]) run solo.
  std::vector<StatusOr<SolveResult>> SolveBatch(std::span<const SolveRequest> requests);

 private:
  struct PendingRequest;

  /// Spawns the driver threads on first use.
  void EnsureDrivers();
  void DriverLoop();
  std::future<StatusOr<SolveResult>> Submit(SolveRequest request,
                                            AdmissionQueue::AdmitPolicy policy);

  StatusOr<SolveResult> RunAdaptive(const SolveRequest& request,
                                    const CancelScope& scope);
  StatusOr<SolveResult> RunAteucRequest(const SolveRequest& request,
                                        const CancelScope& scope);
  StatusOr<SolveResult> RunBisectionRequest(const SolveRequest& request,
                                            const CancelScope& scope);
  SolveResult EvaluateOneShot(const SolveRequest& request,
                              const std::vector<NodeId>& seeds, double select_seconds,
                              size_t num_samples, const CancelScope& scope);

  const DirectedGraph* graph_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;  // engaged when num_threads != 1
  std::unique_ptr<AdmissionQueue> queue_;
  std::once_flag drivers_once_;
  std::vector<std::thread> drivers_;
};

}  // namespace asti
