// SeedMinEngine — the one façade over every seed-minimization algorithm.
//
// A resident engine owns a DirectedGraph reference and one shared
// ThreadPool, and serves uniform SolveRequests: validation at the API
// boundary (Status::InvalidArgument instead of CHECK-crashes), selector
// construction through AlgorithmRegistry, and the §6 evaluation protocol
// (hidden realizations shared across algorithms for a given seed).
//
// Concurrency model: Solve runs on the caller's thread and fans sampling/
// coverage work onto the shared pool; SubmitAsync drives the same Solve on
// a detached std::async thread, so any number of requests can be in flight
// while pool workers interleave their batches (per-batch TaskGroups keep
// them isolated — see src/parallel/README.md). Every RNG stream serving a
// request is derived from request.seed alone, so results are bit-identical
// — in every field except the wall-clock timings (trace seconds,
// aggregate mean_seconds), which measure the run that produced them —
// whether a request runs solo, in SolveBatch, or interleaved with other
// clients, at any pool size != 1 (pool size 1 uses the sequential
// reference sampling path, which is deterministic too but follows the
// paper's in-place stream protocol). See src/api/README.md.

#pragma once

#include <future>
#include <memory>
#include <span>
#include <vector>

#include "api/request.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

namespace asti {

/// Resident query engine over one graph and one worker pool.
class SeedMinEngine {
 public:
  struct Options {
    /// Shared sampling/coverage workers for all requests: 1 = sequential
    /// reference path (no pool), 0 = one per hardware thread, k = k workers.
    size_t num_threads = 1;
  };

  /// The graph must outlive the engine.
  explicit SeedMinEngine(const DirectedGraph& graph) : SeedMinEngine(graph, Options{}) {}
  SeedMinEngine(const DirectedGraph& graph, Options options);

  const DirectedGraph& graph() const { return *graph_; }

  /// The shared pool, or nullptr in sequential mode.
  ThreadPool* pool() { return pool_.get(); }

  /// Checks every request field against the graph; OK iff Solve would run.
  Status Validate(const SolveRequest& request) const;

  /// Serves one request synchronously on the caller's thread.
  StatusOr<SolveResult> Solve(const SolveRequest& request);

  /// Serves one request on its own driver thread; sampling still fans out
  /// to the shared pool. The future carries the same StatusOr Solve would
  /// return (invalid requests resolve to InvalidArgument, never crash).
  /// The engine (and its graph) must outlive every outstanding future:
  /// gather all futures before destroying the engine — destroying it with
  /// a request in flight is a use-after-free.
  std::future<StatusOr<SolveResult>> SubmitAsync(SolveRequest request);

  /// Serves a batch concurrently (one SubmitAsync per request) and gathers
  /// the results in request order. result[i] is bit-identical to
  /// Solve(requests[i]) run solo.
  std::vector<StatusOr<SolveResult>> SolveBatch(std::span<const SolveRequest> requests);

 private:
  StatusOr<SolveResult> RunAdaptive(const SolveRequest& request);
  StatusOr<SolveResult> RunAteucRequest(const SolveRequest& request);
  StatusOr<SolveResult> RunBisectionRequest(const SolveRequest& request);
  SolveResult EvaluateOneShot(const SolveRequest& request,
                              const std::vector<NodeId>& seeds, double select_seconds,
                              size_t num_samples);

  const DirectedGraph* graph_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;  // engaged when num_threads != 1
};

}  // namespace asti
