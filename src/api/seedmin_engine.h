// SeedMinEngine — the one façade over every seed-minimization algorithm,
// serving many catalog graphs from one resident process.
//
// A resident engine fronts a GraphCatalog (many named, immutable,
// hot-swappable graph snapshots), owns one shared ThreadPool and an
// admission-controlled serving core, and serves uniform SolveRequests:
// per-request graph routing (request.graph resolved against the catalog
// at admission — Status::NotFound for unknown names, InvalidArgument for
// requests that leave the name empty), validation at the API boundary
// (Status::InvalidArgument instead of CHECK-crashes), selector
// construction through AlgorithmRegistry, the §6 evaluation protocol
// (hidden realizations shared across algorithms for a given seed), and
// per-request deadlines/cancellation (Status::DeadlineExceeded /
// Status::Cancelled).
//
// Multi-tenancy model: the request pins its GraphRef snapshot from
// admission to resolution, so a concurrent GraphCatalog::Swap (new epoch)
// or Retire never invalidates executing work — requests admitted before
// the swap complete bit-identically on their pinned old-epoch snapshot.
// Per-graph serving state (lazily built scratch reused across requests,
// keyed by (name, epoch) so a swap starts fresh) and per-graph
// inflight/completed accounting live behind one engine-wide pool and one
// admission queue; admission_stats() reports both the queue's per-outcome
// counters and the per-graph serving counters.
//
// Concurrency model: Solve runs on the caller's thread and fans sampling/
// coverage work onto the shared pool. SubmitAsync admits the request into
// a bounded queue (ServingOptions::max_queue_depth / max_inflight) served by a
// small fixed pool of driver threads (ServingOptions::num_drivers) — never one
// thread per request — so a burst beyond capacity is answered with
// Status::ResourceExhausted (or blocks, with ServingOptions::block_when_full)
// instead of spawning unbounded threads onto the shared pool.
//
// Sampler cache: each (name, epoch) GraphState owns a SamplerCache of
// grow-only SharedRrCollections holding the full-residual RR/mRR sets —
// the whole of ATEUC/Bisection and round 1 of every adaptive policy —
// shared across every request on that snapshot. Requests read atomically
// published sealed prefixes of EXACTLY the sets their doubling schedule
// asks for and extend only the shortfall; streams are derived from the
// cache KEY (never a request seed), so a set's content is independent of
// which request generated it. A Swap/Retire invalidates by construction:
// new requests resolve a fresh state with an empty cache, old-epoch work
// keeps its pinned cache alive. request.use_shared_cache = false swaps in
// a request-private cache (timing A/B) with bit-identical results.
//
// Observability: with ServingOptions::enable_metrics (the default) every served
// request carries a populated RequestProfile on its SolveResult (queue
// wait, sampling/coverage/certify seconds, sampling volume, cache_hit and
// reused-vs-extended set counts, request-owned vs shared collection
// bytes) and feeds the engine-wide MetricsRegistry — latency/queue-wait/
// phase histograms and per-outcome counters keyed {graph, algorithm},
// plus per-graph asti_sampler_cache_* hit/miss/extension/bytes families —
// exposed via metrics_snapshot() and the obs/export.h exporters.
// Profiling is passive (spans never touch RNG streams, partitioning, or
// merge order), so results are bit-identical with metrics on or off.
// Request-owned RNG streams derive from request.seed alone and shared
// cache streams from the cache key alone, so *completed* results are
// bit-identical — in every field except the wall-clock timings (trace
// seconds, aggregate mean_seconds), which measure the run that produced
// them — whether a request runs solo, in SolveBatch, queued behind other
// requests, interleaved with requests against other catalog graphs,
// against a cold or warm cache, or with the cache disabled, at any pool
// size != 1 (pool size 1 uses the sequential reference sampling path,
// which is deterministic too but follows the paper's in-place stream
// protocol). See src/api/README.md.

#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/admission_queue.h"
#include "api/graph_catalog.h"
#include "api/request.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace asti {

class ForwardSimulator;

/// Resident multi-tenant query engine over one graph catalog, one worker
/// pool, and one admission queue.
class SeedMinEngine {
 public:
  /// Per-request algorithm defaults, applied by NewRequest(). Split out of
  /// the serving knobs so harness configuration ("this deployment runs LT
  /// with η=50 unless the query says otherwise") lives in one place and a
  /// SolveRequest built by hand is unaffected — these are factory
  /// defaults, never overrides. Field meanings match SolveRequest.
  struct RequestDefaults {
    AlgorithmId algorithm = AlgorithmId::kAsti;
    DiffusionModel model = DiffusionModel::kIndependentCascade;
    NodeId eta = 1;
    double epsilon = 0.5;
    size_t realizations = 1;
    uint64_t seed = 1;
    RootRounding rounding = RootRounding::kRandomized;
  };

  /// How the engine SERVES: pool size, drivers, queue depth, metrics.
  struct ServingOptions {
    /// Shared sampling/coverage workers for all requests: 1 = sequential
    /// reference path (no pool), 0 = one per hardware thread, k = k workers.
    /// Sharded catalog entries divide the resolved count across their
    /// per-shard pools (each shard gets at least one worker).
    size_t num_threads = 1;
    /// Driver threads executing admitted requests (the async serving
    /// concurrency): 0 = one per hardware thread, k = exactly k drivers.
    /// Drivers are spawned lazily on the first SubmitAsync/SolveBatch and
    /// block on the shared pool's TaskGroups, never run on pool workers.
    size_t num_drivers = 4;
    /// Waiting-room slots beyond the executing drivers: admission capacity
    /// is num_drivers + max_queue_depth (unless max_inflight overrides).
    /// A burst of capacity + k submissions yields exactly k rejections.
    size_t max_queue_depth = 64;
    /// Hard cap on admitted (queued + executing) requests; 0 derives it as
    /// num_drivers + max_queue_depth.
    size_t max_inflight = 0;
    /// Admission policy when the queue is full: false = SubmitAsync
    /// resolves to Status::ResourceExhausted immediately (backpressure the
    /// client can see), true = SubmitAsync blocks the calling thread until
    /// a slot frees. SolveBatch always blocks (a synchronous batch caller
    /// *is* the backpressure), so batches larger than capacity still
    /// complete.
    bool block_when_full = false;
    /// Per-request phase profiling + engine-wide metric aggregation. On
    /// (the default): SolveResult::profile is fully populated and every
    /// completion records into the metrics registry (handle lookups once
    /// per request — never per RR-set; phase spans read the clock at batch
    /// boundaries only). Off: phase slots stay zero and the registry is
    /// not touched; total/queue-wait on the profile are still filled (two
    /// clock reads). Results are bit-identical either way.
    bool enable_metrics = true;
    /// Byte budget for each graph's shared sampler cache: when an Acquire
    /// pushes the cache's resident bytes past this, least-recently-used
    /// (kind, model, η, rounding) entries are evicted until it fits (the
    /// entry just served always survives). 0 = unlimited. Eviction never
    /// changes results — a re-created entry regenerates bit-identical sets
    /// — it trades recomputation for memory; asti_sampler_cache_evictions
    /// counts the drops.
    size_t cache_byte_budget = 0;
    /// Factory defaults NewRequest() stamps onto fresh requests. Purely a
    /// construction convenience — requests built by hand ignore it.
    RequestDefaults request_defaults = {};
  };

  /// Per-graph serving counters, part of admission_stats(): one row per
  /// graph with live serving state, newest catalog epoch the engine has
  /// resolved for it.
  struct GraphServingStats {
    std::string name;
    uint64_t epoch = 0;
    /// Requests currently pinned to this graph (admitted or executing,
    /// futures not yet resolved).
    size_t inflight = 0;
    /// Requests served to resolution against this graph since the engine
    /// first saw it (any verdict; rejected-at-admission never counts).
    size_t completed = 0;
  };

  /// The serving front's observability snapshot: the admission queue's
  /// per-outcome counters plus the per-graph routing/inflight view.
  struct EngineStats {
    AdmissionQueue::Stats queue;
    std::vector<GraphServingStats> graphs;  // name order
  };

  /// The catalog must outlive the engine (and every outstanding future).
  /// The engine never copies graphs out of it — requests pin snapshots.
  explicit SeedMinEngine(GraphCatalog& catalog)
      : SeedMinEngine(catalog, ServingOptions{}) {}
  SeedMinEngine(GraphCatalog& catalog, ServingOptions options);

  /// Destruction with requests still in the system: requests a driver is
  /// already executing DRAIN (run to completion, futures resolve normally);
  /// requests still waiting in the queue ABORT (futures resolve to
  /// Status::Cancelled without executing). Blocked producers are woken and
  /// rejected. Callers must not race new submissions against destruction.
  ~SeedMinEngine();

  GraphCatalog& catalog() { return *catalog_; }

  /// The shared pool, or nullptr in sequential mode.
  ThreadPool* pool() { return pool_.get(); }

  /// A fresh request against `graph`, pre-filled with this engine's
  /// ServingOptions::request_defaults. The graph name is required up
  /// front — there is no "default graph" to fall back to.
  SolveRequest NewRequest(std::string graph) const;

  /// Admission counters (per-outcome, since construction) plus per-graph
  /// serving counters — the serving front's observability hook.
  EngineStats admission_stats() const;

  /// Engine-wide metrics snapshot: everything the per-request aggregation
  /// recorded (asti_requests_total, asti_request_latency_seconds,
  /// asti_queue_wait_seconds, asti_phase_seconds, asti_rr_sets_total,
  /// asti_collection_bytes — keyed {graph, algorithm}) plus synthesized
  /// admission counters (asti_admission_total{outcome}), the admission
  /// inflight gauge, and per-graph inflight/completed/epoch series derived
  /// from admission_stats(). Feed the result to ExportPrometheusText /
  /// ExportMetricsJson (obs/export.h). Empty histogram set when the engine
  /// runs with enable_metrics = false.
  MetricsSnapshot metrics_snapshot() const;

  /// Persists the named graph AND its current sealed sampler-cache
  /// prefixes as an ASMS snapshot at `path` (atomic rename; see
  /// src/store/). Re-registering that file later (snapshot_serving.h)
  /// restores the graph by mmap and warm-starts the cache from the
  /// persisted prefixes — the durable form of PR 7's cross-request reuse.
  /// The export freezes the sets sealed at this call; requests may keep
  /// extending the live cache concurrently. NotFound for names the catalog
  /// doesn't hold.
  Status SaveSnapshot(const std::string& graph_name, const std::string& path,
                      bool include_reverse_csr = true);

  /// Checks every request field — including that request.graph resolves in
  /// the catalog — against the named graph; OK iff Solve would run
  /// (deadline/cancellation state is not consulted — a valid request may
  /// still come back Cancelled or DeadlineExceeded).
  Status Validate(const SolveRequest& request) const;

  /// Serves one request synchronously on the caller's thread, bypassing
  /// admission (the caller's thread is the concurrency bound). Resolves
  /// and pins the graph snapshot on entry; honors request.deadline and
  /// request.cancel.
  StatusOr<SolveResult> Solve(const SolveRequest& request);

  /// Admits one request into the bounded queue; a driver thread executes
  /// it (sampling still fans out to the shared pool). The graph name is
  /// resolved — and its snapshot pinned — here, at admission: a Swap or
  /// Retire of the name after SubmitAsync returns does not affect this
  /// request. The future resolves to the same StatusOr Solve would return,
  /// or to ResourceExhausted when admission is full (never blocks unless
  /// ServingOptions::block_when_full), or to Cancelled when the engine is
  /// destroyed before execution starts. Invalid requests, unknown graph
  /// names, and already-expired deadlines resolve immediately without
  /// consuming admission capacity. The engine (and its catalog) must
  /// outlive every outstanding future.
  std::future<StatusOr<SolveResult>> SubmitAsync(SolveRequest request);

  /// Serves a batch through the admission queue with *blocking* admission
  /// (never rejects; the calling thread waits for slots) and gathers the
  /// results in request order. result[i] is bit-identical to
  /// Solve(requests[i]) run solo. Requests in one batch may target
  /// different catalog graphs.
  std::vector<StatusOr<SolveResult>> SolveBatch(std::span<const SolveRequest> requests);

 private:
  struct GraphCounters;
  struct GraphState;
  struct PendingRequest;

  /// RAII per-graph accounting: inflight while engaged, completed on
  /// release (unless dismissed — the rejected-at-admission path).
  class ServingSlot {
   public:
    ServingSlot() = default;
    explicit ServingSlot(std::shared_ptr<GraphState> state);
    ServingSlot(ServingSlot&& other) noexcept;
    ServingSlot& operator=(ServingSlot&& other) noexcept;
    ServingSlot(const ServingSlot&) = delete;
    ServingSlot& operator=(const ServingSlot&) = delete;
    ~ServingSlot();

    /// Undoes the inflight count without marking completion (the request
    /// never entered the system).
    void Dismiss();

    GraphState* state() const { return state_.get(); }

   private:
    std::shared_ptr<GraphState> state_;
  };

  /// Resolves request.graph to this engine's pinned per-graph state:
  /// InvalidArgument for an empty name, NotFound for names the catalog
  /// doesn't hold. Revalidates cached state against the catalog version
  /// (a swapped name gets fresh state keyed by the new epoch; retired
  /// names are dropped so their snapshots can be freed).
  StatusOr<std::shared_ptr<GraphState>> ResolveGraph(const std::string& name);
  void PruneStatesLocked(uint64_t catalog_version);

  /// Spawns the driver threads on first use.
  void EnsureDrivers();
  void DriverLoop();
  std::future<StatusOr<SolveResult>> Submit(SolveRequest request,
                                            AdmissionQueue::AdmitPolicy policy);

  /// The one execution path: runs `request` against the pinned snapshot in
  /// `state` (both Solve and the driver tasks land here). `queue_wait_
  /// seconds` is the admission→pickup wait for async paths (0 for Solve);
  /// it lands on the result's profile and the queue-wait histogram.
  StatusOr<SolveResult> SolveOn(GraphState& state, const SolveRequest& request,
                                const CancelScope& scope,
                                double queue_wait_seconds = 0.0);
  Status ValidateAgainst(const SolveRequest& request, const DirectedGraph& graph) const;

  /// Records one finished request (any verdict) into the registry; no-op
  /// when enable_metrics is off.
  void RecordRequestMetrics(const GraphState& state, const SolveRequest& request,
                            StatusCode code, const RequestProfile& profile);

  StatusOr<SolveResult> RunAdaptive(GraphState& state, const SolveRequest& request,
                                    const CancelScope& scope, RequestProfile* profile);
  StatusOr<SolveResult> RunAteucRequest(GraphState& state, const SolveRequest& request,
                                        const CancelScope& scope,
                                        RequestProfile* profile);
  StatusOr<SolveResult> RunBisectionRequest(GraphState& state,
                                            const SolveRequest& request,
                                            const CancelScope& scope,
                                            RequestProfile* profile);
  SolveResult EvaluateOneShot(GraphState& state, const SolveRequest& request,
                              const std::vector<NodeId>& seeds, double select_seconds,
                              size_t num_samples, const CancelScope& scope);

  GraphCatalog* catalog_;
  ServingOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // engaged when num_threads != 1
  std::unique_ptr<AdmissionQueue> queue_;
  /// Engine-wide metric store; written once per request completion.
  MetricsRegistry registry_;
  std::once_flag drivers_once_;
  std::vector<std::thread> drivers_;

  /// Lazily-built serving state per graph name, revalidated against the
  /// catalog version. Entries pin their snapshot while cached; in-flight
  /// requests hold their own shared_ptr, so dropping an entry here never
  /// pulls a snapshot out from under executing work.
  mutable std::mutex states_mutex_;
  std::map<std::string, std::shared_ptr<GraphState>> graph_states_;
  uint64_t catalog_version_seen_ = 0;
};

}  // namespace asti
