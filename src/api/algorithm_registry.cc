#include "api/algorithm_registry.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "baselines/adaptim.h"
#include "baselines/degree_adaptive.h"
#include "baselines/oracle_greedy.h"
#include "core/trim.h"
#include "core/trim_b.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace asti {

const std::vector<AlgorithmInfo>& AlgorithmRegistry::List() {
  static const std::vector<AlgorithmInfo> catalog = {
      {AlgorithmId::kAsti, "ASTI", "TRIM — truncated influence maximization (Alg. 2)",
       true, 1},
      {AlgorithmId::kAsti2, "ASTI-2", "TRIM-B, batch b = 2 (Alg. 3)", true, 2},
      {AlgorithmId::kAsti4, "ASTI-4", "TRIM-B, batch b = 4 (Alg. 3)", true, 4},
      {AlgorithmId::kAsti8, "ASTI-8", "TRIM-B, batch b = 8 (Alg. 3)", true, 8},
      {AlgorithmId::kAdaptIm, "AdaptIM",
       "adaptive IM baseline (Han et al., PVLDB 2018)", true},
      {AlgorithmId::kAteuc, "ATEUC",
       "non-adaptive seed minimization (Han et al., arXiv:1711.10665)", false},
      {AlgorithmId::kDegree, "DegreeAdaptive",
       "residual highest-degree heuristic (extra baseline)", true},
      {AlgorithmId::kOracle, "OracleGreedy",
       "Golovin-Krause Monte-Carlo greedy oracle (§2.4; tiny graphs)", true},
      {AlgorithmId::kBisection, "Bisection",
       "bisection-on-k transformation (Goyal et al. 2013, §2.4)", false},
  };
  return catalog;
}

const AlgorithmInfo* AlgorithmRegistry::Find(AlgorithmId id) {
  for (const AlgorithmInfo& info : List()) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

const char* AlgorithmRegistry::Name(AlgorithmId id) {
  const AlgorithmInfo* info = Find(id);
  return info != nullptr ? info->name : "?";
}

StatusOr<AlgorithmSpec> AlgorithmRegistry::Parse(const std::string& name) {
  for (const AlgorithmInfo& info : List()) {
    if (name == info.name) return AlgorithmSpec{info.id, 0};
  }
  // "Degree" / "Oracle" shorthands used by the CLI surfaces.
  if (name == "Degree") return AlgorithmSpec{AlgorithmId::kDegree, 0};
  if (name == "Oracle") return AlgorithmSpec{AlgorithmId::kOracle, 0};
  // "ASTI-b" for arbitrary b: canonical b has a dedicated id above; other
  // b ride on kAsti with a batch-size override (b = 1 IS kAsti). The
  // suffix must be a plain positive integer — trailing garbage ("ASTI-4x",
  // "ASTI-1.5") is rejected, not silently truncated.
  if (name.rfind("ASTI-", 0) == 0) {
    const std::string suffix = name.substr(5);
    if (suffix.empty() || suffix.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("bad batch size in '" + name + "'");
    }
    errno = 0;
    const unsigned long long batch = std::strtoull(suffix.c_str(), nullptr, 10);
    if (errno == ERANGE || batch < 1 ||
        batch > std::numeric_limits<NodeId>::max()) {
      return Status::InvalidArgument("bad batch size in '" + name + "'");
    }
    return AlgorithmSpec{AlgorithmId::kAsti,
                         batch == 1 ? NodeId{0} : static_cast<NodeId>(batch)};
  }
  std::string known;
  for (const AlgorithmInfo& info : List()) {
    known += (known.empty() ? "" : ", ") + std::string(info.name);
  }
  return Status::InvalidArgument("unknown algorithm '" + name + "' (known: " + known +
                                 ", ASTI-b for any b >= 1)");
}

StatusOr<std::unique_ptr<RoundSelector>> AlgorithmRegistry::Make(
    AlgorithmId id, const AlgorithmContext& ctx) {
  ASM_CHECK(ctx.graph != nullptr) << "AlgorithmContext.graph unset";
  const DirectedGraph& graph = *ctx.graph;
  switch (id) {
    case AlgorithmId::kAsti:
    case AlgorithmId::kAsti2:
    case AlgorithmId::kAsti4:
    case AlgorithmId::kAsti8: {
      const NodeId batch = ctx.batch_size != 0 ? ctx.batch_size : Find(id)->default_batch;
      if (batch == 1) {
        TrimOptions options;
        options.epsilon = ctx.epsilon;
        options.rounding = ctx.rounding;
        options.num_threads = ctx.num_threads;
        options.pool = ctx.pool;
        options.cancel = ctx.cancel;
        options.profile = ctx.profile;
        options.sampler_cache = ctx.sampler_cache;
        return std::unique_ptr<RoundSelector>(
            std::make_unique<Trim>(graph, ctx.model, options));
      }
      TrimBOptions options;
      options.epsilon = ctx.epsilon;
      options.batch_size = batch;
      options.rounding = ctx.rounding;
      options.num_threads = ctx.num_threads;
      options.pool = ctx.pool;
      options.cancel = ctx.cancel;
      options.profile = ctx.profile;
      options.sampler_cache = ctx.sampler_cache;
      return std::unique_ptr<RoundSelector>(
          std::make_unique<TrimB>(graph, ctx.model, options));
    }
    case AlgorithmId::kAdaptIm: {
      AdaptImOptions options;
      options.epsilon = ctx.epsilon;
      options.num_threads = ctx.num_threads;
      options.pool = ctx.pool;
      options.cancel = ctx.cancel;
      options.profile = ctx.profile;
      options.sampler_cache = ctx.sampler_cache;
      return std::unique_ptr<RoundSelector>(
          std::make_unique<AdaptIm>(graph, ctx.model, options));
    }
    case AlgorithmId::kDegree:
      return std::unique_ptr<RoundSelector>(std::make_unique<DegreeAdaptive>(graph));
    case AlgorithmId::kOracle: {
      OracleGreedyOptions options;
      options.trials_per_node = ctx.oracle_trials;
      return std::unique_ptr<RoundSelector>(
          std::make_unique<OracleGreedy>(graph, ctx.model, options));
    }
    case AlgorithmId::kAteuc:
    case AlgorithmId::kBisection:
      return Status::InvalidArgument(
          std::string(Name(id)) +
          " is non-adaptive (no RoundSelector); use SeedMinEngine::Solve");
  }
  return Status::InvalidArgument("unknown algorithm id " +
                                 std::to_string(static_cast<int>(id)));
}

}  // namespace asti
