#include "api/admission_queue.h"

#include <utility>

#include "util/check.h"

namespace asti {

AdmissionQueue::AdmissionQueue(size_t capacity) : capacity_(capacity) {
  ASM_CHECK(capacity >= 1) << "admission capacity must be >= 1";
}

AdmissionQueue::AdmitResult AdmissionQueue::Admit(AdmissionTask task,
                                                  AdmitPolicy policy) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (policy == AdmitPolicy::kBlock) {
    space_.wait(lock, [this] { return closed_ || in_flight_ < capacity_; });
  }
  if (closed_) return AdmitResult::kClosed;
  if (in_flight_ >= capacity_) {
    ++stats_.rejected;
    return AdmitResult::kRejected;
  }
  ++in_flight_;
  ++stats_.accepted;
  queue_.push_back(std::move(task));
  lock.unlock();
  ready_.notify_one();
  return AdmitResult::kAdmitted;
}

bool AdmissionQueue::Pop(AdmissionTask& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  // Close() sets closed_ and strips the queue under this same mutex, so
  // an empty queue here implies closed — consumers exit; they never see
  // closed-with-items.
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void AdmissionQueue::Complete(AdmissionOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ASM_CHECK(in_flight_ >= 1) << "Complete without a matching Admit";
    --in_flight_;
    ++stats_.completed;
    switch (outcome) {
      case AdmissionOutcome::kExecuted:
        break;
      case AdmissionOutcome::kCancelledInQueue:
        ++stats_.cancelled_in_queue;
        break;
      case AdmissionOutcome::kDeadlineInQueue:
        ++stats_.deadline_in_queue;
        break;
    }
  }
  space_.notify_one();
}

std::vector<AdmissionTask> AdmissionQueue::Close() {
  std::vector<AdmissionTask> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    orphans.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  ready_.notify_all();
  space_.notify_all();
  return orphans;
}

size_t AdmissionQueue::InFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.in_flight = in_flight_;
  return snapshot;
}

}  // namespace asti
