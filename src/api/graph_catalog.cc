#include "api/graph_catalog.h"

#include <utility>

namespace asti {

namespace {

Status CheckName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  return Status::OK();
}

// The metadata block is built ONCE per Register/Swap and shared by every
// ref for that epoch, so Get() under the lock copies two shared_ptrs and
// never the name string.
GraphRef MakeRef(const std::string& name, uint64_t epoch,
                 std::shared_ptr<const DirectedGraph> snapshot, WeightScheme scheme,
                 std::shared_ptr<const CollectionWarmSource> warm,
                 std::shared_ptr<const ShardTopology> shards) {
  auto meta = std::make_shared<GraphMeta>();
  meta->name = name;
  meta->epoch = epoch;
  meta->num_nodes = snapshot->NumNodes();
  meta->num_edges = snapshot->NumEdges();
  meta->weight_scheme = scheme;
  meta->warm_collections = std::move(warm);
  meta->shard_topology = std::move(shards);
  GraphRef ref;
  ref.snapshot = std::move(snapshot);
  ref.meta = std::move(meta);
  return ref;
}

}  // namespace

StatusOr<GraphRef> GraphCatalog::Register(const std::string& name,
                                          std::shared_ptr<const DirectedGraph> snapshot,
                                          WeightScheme scheme,
                                          std::shared_ptr<const CollectionWarmSource> warm,
                                          std::shared_ptr<const ShardTopology> shards) {
  ASM_RETURN_NOT_OK(CheckName(name));
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot register a null graph snapshot");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name) > 0) {
    return Status::FailedPrecondition("graph '" + name +
                                      "' is already registered; use Swap to replace it");
  }
  GraphRef ref = MakeRef(name, /*epoch=*/1, std::move(snapshot), scheme, std::move(warm),
                         std::move(shards));
  entries_.emplace(name, ref);
  ++version_;
  return ref;
}

StatusOr<GraphRef> GraphCatalog::Register(const std::string& name, DirectedGraph graph,
                                          WeightScheme scheme) {
  return Register(name, std::make_shared<const DirectedGraph>(std::move(graph)), scheme);
}

StatusOr<GraphRef> GraphCatalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' in the catalog");
  }
  return it->second;
}

StatusOr<GraphRef> GraphCatalog::Swap(const std::string& name,
                                      std::shared_ptr<const DirectedGraph> snapshot,
                                      WeightScheme scheme,
                                      std::shared_ptr<const CollectionWarmSource> warm,
                                      std::shared_ptr<const ShardTopology> shards) {
  ASM_RETURN_NOT_OK(CheckName(name));
  if (snapshot == nullptr) {
    return Status::InvalidArgument("cannot swap in a null graph snapshot");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("cannot swap unregistered graph '" + name +
                            "'; Register it first");
  }
  // The old snapshot is released here (the map held one pin); refs already
  // handed out keep it alive until they drop.
  it->second = MakeRef(name, it->second.epoch() + 1, std::move(snapshot), scheme,
                       std::move(warm), std::move(shards));
  ++version_;
  return it->second;
}

StatusOr<GraphRef> GraphCatalog::Swap(const std::string& name, DirectedGraph graph,
                                      WeightScheme scheme) {
  return Swap(name, std::make_shared<const DirectedGraph>(std::move(graph)), scheme);
}

Status GraphCatalog::Retire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("cannot retire unregistered graph '" + name + "'");
  }
  entries_.erase(it);
  ++version_;
  return Status::OK();
}

std::vector<GraphRef> GraphCatalog::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GraphRef> refs;
  refs.reserve(entries_.size());
  for (const auto& [name, ref] : entries_) refs.push_back(ref);
  return refs;
}

size_t GraphCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

uint64_t GraphCatalog::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

StatusOr<GraphRef> RegisterSurrogate(GraphCatalog& catalog, DatasetId id, double scale,
                                     uint64_t seed, WeightScheme scheme) {
  auto graph = MakeSurrogateDataset(id, scale, seed, scheme);
  if (!graph.ok()) return graph.status();
  return catalog.Register(CanonicalDatasetName(id), std::move(graph).value(), scheme);
}

}  // namespace asti
