#include "api/snapshot_serving.h"

#include <memory>
#include <utility>

namespace asti {

namespace {

template <class RegisterFn>
StatusOr<GraphRef> InstallSnapshot(const std::string& path, store::SnapshotVerify verify,
                                   const std::string& override_name,
                                   RegisterFn&& register_fn) {
  ASM_ASSIGN_OR_RETURN(store::GraphSnapshot snapshot, store::OpenSnapshot(path, verify));
  const std::string& name = override_name.empty() ? snapshot.name : override_name;
  // The DirectedGraph is spans + the payload keepalive; moving it into the
  // catalog's shared snapshot transfers the mapping pin, no array copies.
  return register_fn(name,
                     std::make_shared<const DirectedGraph>(std::move(snapshot.graph)),
                     snapshot.weight_scheme, std::move(snapshot.warm));
}

}  // namespace

StatusOr<GraphRef> RegisterSnapshotFile(GraphCatalog& catalog, const std::string& path,
                                        store::SnapshotVerify verify,
                                        const std::string& override_name) {
  return InstallSnapshot(path, verify, override_name,
                         [&catalog](const std::string& name, auto graph,
                                    WeightScheme scheme, auto warm) {
                           return catalog.Register(name, std::move(graph), scheme,
                                                   std::move(warm));
                         });
}

StatusOr<GraphRef> SwapSnapshotFile(GraphCatalog& catalog, const std::string& path,
                                    store::SnapshotVerify verify,
                                    const std::string& override_name) {
  return InstallSnapshot(path, verify, override_name,
                         [&catalog](const std::string& name, auto graph,
                                    WeightScheme scheme, auto warm) {
                           return catalog.Swap(name, std::move(graph), scheme,
                                               std::move(warm));
                         });
}

}  // namespace asti
