#include "api/seedmin_engine.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <tuple>
#include <utility>

#include "baselines/ateuc.h"
#include "baselines/bisection_seedmin.h"
#include "core/asti.h"
#include "diffusion/forward_sim.h"
#include "diffusion/world.h"
#include "sampling/sampler_cache.h"
#include "shard/runtime.h"
#include "store/snapshot_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace asti {

namespace {

// Domain-separated stream derivation via Rng::Split(i): world streams are
// shared by every algorithm (same hidden realizations, the §6 protocol),
// selector streams are distinct per (algorithm, run). All derivations root
// at request.seed, never at engine or catalog state, so a result is a pure
// function of (graph snapshot, request).
enum StreamDomain : uint64_t {
  kWorldDomain = 0,
  kAteucDomain = 1,
  kBisectionDomain = 2,
  kSelectorDomainBase = 16,  // + AlgorithmId
};

Rng StreamFor(uint64_t seed, uint64_t domain, size_t run) {
  return Rng(seed).Split(domain).Split(run);
}

// Hidden realization for run r — shared across algorithms by construction.
Realization HiddenRealization(const DirectedGraph& graph, const SolveRequest& request,
                              size_t run) {
  Rng world_rng = StreamFor(request.seed, kWorldDomain, run);
  return request.model == DiffusionModel::kIndependentCascade
             ? Realization::SampleIc(graph, world_rng)
             : Realization::SampleLt(graph, world_rng);
}

// One copy of the empty-name rejection, shared by Validate and
// ResolveGraph so the migration pointer cannot drift between the two
// boundaries that enforce it.
constexpr const char kEmptyGraphNameError[] =
    "request.graph must name a catalog graph (the legacy single-graph "
    "engine binding is gone: Register the graph in the GraphCatalog and "
    "set request.graph)";

void FinishResult(const SolveRequest& request, std::vector<AdaptiveRunTrace> traces,
                  SolveResult& result) {
  result.algorithm = request.algorithm;
  result.aggregate = Aggregate(traces);
  result.always_reached =
      result.aggregate.runs_reaching_target == result.aggregate.runs;
  if (request.keep_traces) result.traces = std::move(traces);
}

}  // namespace

// Per-NAME serving counters, shared across epochs: a Swap must not reset
// the completed total or lose sight of old-epoch requests still
// executing, so the counters outlive any single snapshot's state.
//
// Both counts live in ONE atomic word — completed in the low 32 bits,
// inflight in the high 32 — so a request's completion moves it from
// inflight to completed in a single fetch_add. The previous two-atomic
// scheme had a torn window between the inflight decrement and the
// completed increment where a stats() reader counted the request in
// NEITHER total; packing makes `ever_admitted == inflight + completed`
// hold in every snapshot. 32 bits each is ample: inflight is bounded by
// admission capacity (≪ 2^32) and 4 billion completions per graph name
// exceed any engine lifetime this serves.
struct SeedMinEngine::GraphCounters {
  static constexpr uint64_t kInflightOne = uint64_t{1} << 32;
  static constexpr uint64_t kCompletedMask = kInflightOne - 1;

  std::atomic<uint64_t> packed{0};

  void Engage() { packed.fetch_add(kInflightOne, std::memory_order_relaxed); }
  /// inflight -1, completed +1, atomically (unsigned wrap of the high half
  /// borrows exactly the one inflight unit the request held).
  void Release() {
    packed.fetch_add(uint64_t{1} - kInflightOne, std::memory_order_relaxed);
  }
  /// inflight -1 without completing (rejected-at-admission path).
  void Dismiss() { packed.fetch_sub(kInflightOne, std::memory_order_relaxed); }

  struct View {
    size_t inflight;
    size_t completed;
  };
  View Load() const {
    const uint64_t raw = packed.load(std::memory_order_relaxed);
    return {static_cast<size_t>(raw >> 32),
            static_cast<size_t>(raw & kCompletedMask)};
  }
};

// Per-(name, epoch) serving state: the pinned snapshot, the per-name
// counters (carried over across epochs), and lazily-built scratch reused
// across requests against this snapshot. A Swap produces a NEW GraphState
// (new epoch key), so scratch never crosses epochs; the old state — and
// its snapshot pin — dies with the last in-flight request holding it.
struct SeedMinEngine::GraphState {
  GraphState(GraphRef pinned, std::shared_ptr<GraphCounters> shared_counters,
             size_t num_threads, size_t cache_byte_budget)
      : ref(std::move(pinned)),
        counters(std::move(shared_counters)),
        shard_runtime(ref.shard_topology() != nullptr
                          ? std::make_unique<ShardRuntime>(
                                ref.snapshot, ref.shard_topology(), num_threads)
                          : nullptr),
        sampler_cache(ref.graph(), ref.warm_collections(), shard_runtime.get(),
                      cache_byte_budget) {}

  const GraphRef ref;
  const std::shared_ptr<GraphCounters> counters;

  // Shard executor for sharded catalog entries (null for unsharded ones).
  // Declared BEFORE sampler_cache: the cache holds a non-owning pointer to
  // it, so it must construct first and destruct last. Per-epoch like the
  // cache — a Swap that changes the topology builds a fresh runtime.
  const std::unique_ptr<ShardRuntime> shard_runtime;

  // Shared full-residual sampler cache for THIS (name, epoch) snapshot.
  // Living inside the per-epoch state gives invalidation for free: a
  // catalog Swap/Retire makes new requests resolve a fresh GraphState (and
  // thus an empty cache), while requests still executing on the old epoch
  // keep their pinned state — and its cache — alive through their
  // ServingSlot shared_ptr. CollectionViews handed out pin their chunks
  // independently, so even the last slot dying mid-read is safe.
  SamplerCache sampler_cache;

  // Free list of forward-simulation scratch (visited epochs, frontier
  // buffers) sized for this snapshot. Borrowing hands a simulator to one
  // request at a time, so concurrent one-shot evaluations never share
  // scratch; reuse only skips re-allocation, never changes results.
  std::mutex scratch_mutex;
  std::vector<std::unique_ptr<ForwardSimulator>> free_simulators;

  std::unique_ptr<ForwardSimulator> BorrowSimulator() {
    {
      std::lock_guard<std::mutex> lock(scratch_mutex);
      if (!free_simulators.empty()) {
        std::unique_ptr<ForwardSimulator> simulator = std::move(free_simulators.back());
        free_simulators.pop_back();
        return simulator;
      }
    }
    return std::make_unique<ForwardSimulator>(ref.graph());
  }

  void ReturnSimulator(std::unique_ptr<ForwardSimulator> simulator) {
    std::lock_guard<std::mutex> lock(scratch_mutex);
    free_simulators.push_back(std::move(simulator));
  }
};

SeedMinEngine::ServingSlot::ServingSlot(std::shared_ptr<GraphState> state)
    : state_(std::move(state)) {
  if (state_ != nullptr) state_->counters->Engage();
}

SeedMinEngine::ServingSlot::ServingSlot(ServingSlot&& other) noexcept
    : state_(std::move(other.state_)) {}

SeedMinEngine::ServingSlot& SeedMinEngine::ServingSlot::operator=(
    ServingSlot&& other) noexcept {
  if (this != &other) {
    if (state_ != nullptr) state_->counters->Release();
    state_ = std::move(other.state_);
  }
  return *this;
}

SeedMinEngine::ServingSlot::~ServingSlot() {
  if (state_ != nullptr) state_->counters->Release();
}

void SeedMinEngine::ServingSlot::Dismiss() {
  if (state_ != nullptr) {
    state_->counters->Dismiss();
    state_.reset();  // never admitted: not a completion
  }
}

// One admitted request: the query, the graph state pinned at admission,
// and the promise its SubmitAsync future observes. Owned by the
// AdmissionTask closure until resolution.
struct SeedMinEngine::PendingRequest {
  SolveRequest request;
  ServingSlot slot;
  std::promise<StatusOr<SolveResult>> promise;
  /// Set just before Admit; pickup time minus this is the request's queue
  /// wait (profile.queue_wait_seconds + the queue-wait histogram).
  std::chrono::steady_clock::time_point admitted_at{};
};

SeedMinEngine::SeedMinEngine(GraphCatalog& catalog, ServingOptions options)
    : catalog_(&catalog), options_(options) {
  if (options_.num_threads != 1) pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  options_.num_drivers = ResolveThreadCount(options_.num_drivers);
  const size_t capacity = options_.max_inflight != 0
                              ? options_.max_inflight
                              : options_.num_drivers + options_.max_queue_depth;
  queue_ = std::make_unique<AdmissionQueue>(capacity);
}

SeedMinEngine::~SeedMinEngine() {
  // Abort-queued / drain-executing: strip never-started requests and
  // resolve their futures to Cancelled, then join the drivers, which
  // finish whatever they already picked up.
  for (AdmissionTask& orphan : queue_->Close()) {
    queue_->Complete(orphan(/*aborted=*/true));
  }
  for (std::thread& driver : drivers_) driver.join();
}

SeedMinEngine::EngineStats SeedMinEngine::admission_stats() const {
  EngineStats stats;
  stats.queue = queue_->stats();
  std::lock_guard<std::mutex> lock(states_mutex_);
  for (const auto& [name, state] : graph_states_) {
    GraphServingStats row;
    row.name = name;
    row.epoch = state->ref.epoch();
    const GraphCounters::View counts = state->counters->Load();
    row.inflight = counts.inflight;
    row.completed = counts.completed;
    stats.graphs.push_back(std::move(row));
  }
  return stats;
}

StatusOr<std::shared_ptr<SeedMinEngine::GraphState>> SeedMinEngine::ResolveGraph(
    const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument(kEmptyGraphNameError);
  }
  // Resolution and cache update happen under one states_mutex_ critical
  // section (catalog locks nest inside it, never the other way around).
  // The version is read BEFORE Get: any catalog mutation racing this
  // resolution either lands before the version read (we prune against it
  // now) or after it (Get returns data at least as new as the recorded
  // version, and the next resolution sees the version bump and
  // re-prunes). Either way a stale ref can never be cached with the
  // version marked current.
  std::lock_guard<std::mutex> lock(states_mutex_);
  const uint64_t version = catalog_->version();
  if (version != catalog_version_seen_) PruneStatesLocked(version);
  auto ref = catalog_->Get(name);
  if (!ref.ok()) {
    // Drop any stale cached state so a retired name's snapshot can be
    // freed as soon as its in-flight requests finish.
    graph_states_.erase(name);
    return ref.status();
  }
  std::shared_ptr<GraphState>& slot = graph_states_[name];
  // Snapshot identity is compared alongside the epoch: epochs restart at
  // 1 when a retired name is re-registered, so epoch equality alone could
  // leave a cached state serving the retired snapshot.
  if (slot == nullptr || slot->ref.epoch() != ref->epoch() ||
      slot->ref.snapshot != ref->snapshot) {
    // Scratch is per-snapshot (fresh state), counters are per-name
    // (carried over so a hot-swap never resets the serving totals or
    // loses old-epoch requests still in flight).
    auto counters = slot != nullptr ? slot->counters : std::make_shared<GraphCounters>();
    slot = std::make_shared<GraphState>(std::move(*ref), std::move(counters),
                                        options_.num_threads,
                                        options_.cache_byte_budget);
  }
  return slot;
}

// Revalidates cached states against the catalog: retired names are
// dropped (releasing the cache's snapshot pin), swapped names get fresh
// per-epoch state in place with their per-name counters carried over.
// In-flight requests keep their own shared_ptr pins, so neither path
// pulls a snapshot out from under executing work. Called under
// states_mutex_; takes the catalog lock once (List) rather than once per
// cached entry.
void SeedMinEngine::PruneStatesLocked(uint64_t catalog_version) {
  std::map<std::string, GraphRef> live;
  for (GraphRef& ref : catalog_->List()) live.emplace(ref.name(), std::move(ref));
  for (auto it = graph_states_.begin(); it != graph_states_.end();) {
    const auto current = live.find(it->first);
    if (current == live.end()) {
      it = graph_states_.erase(it);
      continue;
    }
    if (current->second.epoch() != it->second->ref.epoch() ||
        current->second.snapshot != it->second->ref.snapshot) {
      it->second = std::make_shared<GraphState>(std::move(current->second),
                                                it->second->counters,
                                                options_.num_threads,
                                                options_.cache_byte_budget);
    }
    ++it;
  }
  catalog_version_seen_ = catalog_version;
}

Status SeedMinEngine::ValidateAgainst(const SolveRequest& request,
                                      const DirectedGraph& graph) const {
  const NodeId n = graph.NumNodes();
  const AlgorithmInfo* info = AlgorithmRegistry::Find(request.algorithm);
  if (info == nullptr) {
    return Status::InvalidArgument(
        "unknown algorithm id " +
        std::to_string(static_cast<int>(request.algorithm)));
  }
  if (request.eta < 1 || request.eta > n) {
    return Status::InvalidArgument("eta " + std::to_string(request.eta) +
                                   " outside [1, " + std::to_string(n) + "]");
  }
  if (!(request.epsilon > 0.0 && request.epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon " + std::to_string(request.epsilon) +
                                   " outside (0, 1)");
  }
  if (request.realizations == 0) {
    return Status::InvalidArgument("realizations must be >= 1");
  }
  // The override is restricted to plain kAsti (mirroring Parse("ASTI-b")):
  // on a dedicated ASTI-b id it would make result.algorithm disagree with
  // the executed batch size and the selector's RNG stream domain.
  if (request.batch_size != 0 && request.algorithm != AlgorithmId::kAsti) {
    return Status::InvalidArgument(
        std::string("batch_size override is only valid with ASTI (got ") +
        info->name + "); use the ASTI-b id or batch_size on ASTI");
  }
  if (request.algorithm == AlgorithmId::kOracle && request.oracle_trials == 0) {
    return Status::InvalidArgument("oracle_trials must be >= 1");
  }
  return Status::OK();
}

SolveRequest SeedMinEngine::NewRequest(std::string graph) const {
  const RequestDefaults& defaults = options_.request_defaults;
  SolveRequest request;
  request.graph = std::move(graph);
  request.algorithm = defaults.algorithm;
  request.model = defaults.model;
  request.eta = defaults.eta;
  request.epsilon = defaults.epsilon;
  request.realizations = defaults.realizations;
  request.seed = defaults.seed;
  request.rounding = defaults.rounding;
  return request;
}

Status SeedMinEngine::Validate(const SolveRequest& request) const {
  if (request.graph.empty()) {
    return Status::InvalidArgument(kEmptyGraphNameError);
  }
  auto ref = catalog_->Get(request.graph);
  if (!ref.ok()) return ref.status();
  return ValidateAgainst(request, ref->graph());
}

StatusOr<SolveResult> SeedMinEngine::Solve(const SolveRequest& request) {
  auto state = ResolveGraph(request.graph);
  if (!state.ok()) return state.status();
  ASM_RETURN_NOT_OK(ValidateAgainst(request, (*state)->ref.graph()));
  const CancelScope scope(request.cancel, request.deadline);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // expired/cancelled before any work
  const ServingSlot slot(*state);
  return SolveOn(**state, request, scope);
}

StatusOr<SolveResult> SeedMinEngine::SolveOn(GraphState& state,
                                             const SolveRequest& request,
                                             const CancelScope& scope,
                                             double queue_wait_seconds) {
  // Phase slots are threaded through the selector stack only when metrics
  // are on; total/queue-wait are always filled (two clock reads). The
  // profile is passive everywhere it travels, so the seeds/spreads/traces
  // of the result are bit-identical with metrics on or off.
  RequestProfile profile;
  profile.queue_wait_seconds = queue_wait_seconds;
  RequestProfile* slots = options_.enable_metrics ? &profile : nullptr;
  WallTimer exec_timer;
  StatusOr<SolveResult> result =
      request.algorithm == AlgorithmId::kAteuc
          ? RunAteucRequest(state, request, scope, slots)
          : request.algorithm == AlgorithmId::kBisection
                ? RunBisectionRequest(state, request, scope, slots)
                : RunAdaptive(state, request, scope, slots);
  profile.total_seconds = queue_wait_seconds + exec_timer.Seconds();
  // A request is a cache hit iff every cacheable collection it read came
  // entirely from already-sealed prefixes. Computed once here (not in the
  // cache) because one request may Acquire many ladder prefixes.
  profile.cache_hit = profile.sets_reused > 0 && profile.sets_extended == 0;
  if (result.ok()) {
    result->graph_name = state.ref.name();
    result->graph_epoch = state.ref.epoch();
    result->profile = profile;
  }
  RecordRequestMetrics(state, request, result.ok() ? StatusCode::kOk : result.status().code(),
                       profile);
  return result;
}

void SeedMinEngine::RecordRequestMetrics(const GraphState& state,
                                         const SolveRequest& request, StatusCode code,
                                         const RequestProfile& profile) {
  if (!options_.enable_metrics) return;
  auto to_nanos = [](double seconds) {
    return seconds <= 0.0 ? uint64_t{0} : static_cast<uint64_t>(seconds * 1e9);
  };
  const std::string algorithm = AlgorithmRegistry::Name(request.algorithm);
  const MetricLabels labels = {{"graph", state.ref.name()}, {"algorithm", algorithm}};
  registry_
      .GetCounter("asti_requests_total", {{"graph", state.ref.name()},
                                          {"algorithm", algorithm},
                                          {"outcome", StatusCodeName(code)}})
      .Add(1);
  constexpr double kNanos = 1e-9;
  registry_.GetHistogram("asti_request_latency_seconds", labels, kNanos)
      .Record(to_nanos(profile.total_seconds));
  registry_.GetHistogram("asti_queue_wait_seconds", labels, kNanos)
      .Record(to_nanos(profile.queue_wait_seconds));
  const std::pair<const char*, double> phases[] = {
      {"sampling", profile.sampling_seconds},
      {"coverage", profile.coverage_seconds},
      {"certify", profile.certify_seconds},
  };
  for (const auto& [phase, seconds] : phases) {
    registry_
        .GetHistogram("asti_phase_seconds",
                      {{"graph", state.ref.name()},
                       {"algorithm", algorithm},
                       {"phase", phase}},
                      kNanos)
        .Record(to_nanos(seconds));
  }
  registry_.GetCounter("asti_rr_sets_total", labels).Add(profile.sets_generated);
  registry_.GetCounter("asti_rr_sets_reused_total", labels).Add(profile.sets_reused);
  registry_.GetHistogram("asti_collection_bytes", labels)
      .Record(profile.collection_bytes);
  registry_.GetHistogram("asti_shared_collection_bytes", labels)
      .Record(profile.shared_collection_bytes);
}

MetricsSnapshot SeedMinEngine::metrics_snapshot() const {
  MetricsSnapshot snapshot = registry_.Snapshot();
  // Synthesize the admission/serving series from the mutex-consistent
  // EngineStats snapshot, then restore sorted order so exporters emit each
  // metric family contiguously.
  const EngineStats stats = admission_stats();
  const std::pair<const char*, size_t> outcomes[] = {
      {"accepted", stats.queue.accepted},
      {"rejected", stats.queue.rejected},
      {"completed", stats.queue.completed},
      {"cancelled_in_queue", stats.queue.cancelled_in_queue},
      {"deadline_in_queue", stats.queue.deadline_in_queue},
  };
  for (const auto& [outcome, value] : outcomes) {
    snapshot.counters.push_back(
        {"asti_admission_total", {{"outcome", outcome}}, value});
  }
  snapshot.gauges.push_back({"asti_admission_inflight",
                             {},
                             static_cast<int64_t>(stats.queue.in_flight)});
  for (const GraphServingStats& graph : stats.graphs) {
    snapshot.counters.push_back({"asti_graph_completed_total",
                                 {{"graph", graph.name}},
                                 static_cast<uint64_t>(graph.completed)});
    snapshot.gauges.push_back({"asti_graph_inflight",
                               {{"graph", graph.name}},
                               static_cast<int64_t>(graph.inflight)});
    snapshot.gauges.push_back({"asti_graph_epoch",
                               {{"graph", graph.name}},
                               static_cast<int64_t>(graph.epoch)});
  }
  // Per-graph sampler-cache families, read straight off each live
  // GraphState's cache (relaxed monotone counters; a snapshot racing an
  // Acquire sees a consistent-enough point-in-time view). A swapped or
  // retired graph's old cache drops out of the snapshot with its state —
  // the series describe the epoch currently being served.
  {
    std::lock_guard<std::mutex> lock(states_mutex_);
    for (const auto& [name, state] : graph_states_) {
      const MetricLabels graph_label = {{"graph", name}};
      const SamplerCacheStats cache = state->sampler_cache.Stats();
      snapshot.counters.push_back(
          {"asti_sampler_cache_hits_total", graph_label, cache.hits});
      snapshot.counters.push_back(
          {"asti_sampler_cache_misses_total", graph_label, cache.misses});
      snapshot.counters.push_back(
          {"asti_sampler_cache_extensions_total", graph_label, cache.extensions});
      snapshot.counters.push_back(
          {"asti_sampler_cache_sets_reused_total", graph_label, cache.sets_reused});
      snapshot.counters.push_back(
          {"asti_sampler_cache_sets_extended_total", graph_label, cache.sets_extended});
      snapshot.counters.push_back(
          {"asti_sampler_cache_warm_starts_total", graph_label, cache.warm_starts});
      snapshot.counters.push_back(
          {"asti_sampler_cache_sets_adopted_total", graph_label, cache.sets_adopted});
      snapshot.counters.push_back(
          {"asti_sampler_cache_evictions_total", graph_label, cache.evictions});
      snapshot.gauges.push_back(
          {"asti_sampler_cache_bytes", graph_label,
           static_cast<int64_t>(state->sampler_cache.TotalBytes())});
      // Shard routing series for sharded entries: per-shard generated-set
      // counters plus an imbalance gauge (1000 × max/mean over shards; 0
      // until any set has been generated, 1000 = perfectly balanced).
      if (state->shard_runtime != nullptr) {
        const std::vector<uint64_t> shard_sets = state->shard_runtime->SetCounts();
        snapshot.gauges.push_back({"asti_graph_shards", graph_label,
                                   static_cast<int64_t>(shard_sets.size())});
        uint64_t total = 0;
        uint64_t peak = 0;
        for (size_t k = 0; k < shard_sets.size(); ++k) {
          snapshot.counters.push_back(
              {"asti_shard_rr_sets_total",
               {{"graph", name}, {"shard", std::to_string(k)}},
               shard_sets[k]});
          total += shard_sets[k];
          peak = std::max(peak, shard_sets[k]);
        }
        const int64_t imbalance =
            total == 0 ? 0
                       : static_cast<int64_t>((1000.0 * static_cast<double>(peak) *
                                               static_cast<double>(shard_sets.size())) /
                                              static_cast<double>(total));
        snapshot.gauges.push_back(
            {"asti_shard_imbalance_permille", graph_label, imbalance});
      }
    }
  }
  auto by_identity = [](const auto& a, const auto& b) {
    return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_identity);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_identity);
  return snapshot;
}

Status SeedMinEngine::SaveSnapshot(const std::string& graph_name, const std::string& path,
                                   bool include_reverse_csr) {
  // Resolving pins the current epoch's state; a cold name simply exports a
  // graph with no collection sections.
  ASM_ASSIGN_OR_RETURN(const std::shared_ptr<GraphState> state, ResolveGraph(graph_name));
  const std::vector<SealedCollectionExport> sealed = state->sampler_cache.ExportSealed();
  store::SnapshotWriteOptions options;
  options.include_reverse_csr = include_reverse_csr;
  return store::WriteSnapshot(state->ref.graph(), state->ref.name(),
                              state->ref.weight_scheme(), sealed, path, options);
}

void SeedMinEngine::EnsureDrivers() {
  std::call_once(drivers_once_, [this] {
    drivers_.reserve(options_.num_drivers);
    for (size_t i = 0; i < options_.num_drivers; ++i) {
      drivers_.emplace_back([this] { DriverLoop(); });
    }
  });
}

void SeedMinEngine::DriverLoop() {
  AdmissionTask task;
  while (queue_->Pop(task)) {
    queue_->Complete(task(/*aborted=*/false));
    task = nullptr;  // release the closure before blocking in Pop again
  }
}

std::future<StatusOr<SolveResult>> SeedMinEngine::Submit(
    SolveRequest request, AdmissionQueue::AdmitPolicy policy) {
  auto pending = std::make_shared<PendingRequest>();
  pending->request = std::move(request);
  std::future<StatusOr<SolveResult>> future = pending->promise.get_future();

  // Resolution + fast-fail on the caller's thread: unknown graph names,
  // invalid requests and dead-on-arrival deadlines/cancellations never
  // consume admission capacity. A successfully resolved request pins its
  // snapshot HERE — a catalog Swap/Retire between admission and execution
  // does not touch it.
  auto state = ResolveGraph(pending->request.graph);
  if (!state.ok()) {
    pending->promise.set_value(state.status());
    return future;
  }
  const Status invalid = ValidateAgainst(pending->request, (*state)->ref.graph());
  if (!invalid.ok()) {
    pending->promise.set_value(invalid);
    return future;
  }
  const CancelScope scope(pending->request.cancel, pending->request.deadline);
  const Status stopped = scope.ToStatus();
  if (!stopped.ok()) {
    pending->promise.set_value(stopped);
    return future;
  }

  EnsureDrivers();
  pending->slot = ServingSlot(std::move(*state));
  pending->admitted_at = std::chrono::steady_clock::now();
  AdmissionTask task = [this, pending](bool aborted) -> AdmissionOutcome {
    const double queue_wait =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pending->admitted_at)
            .count();
    if (aborted) {
      pending->promise.set_value(
          Status::Cancelled("engine destroyed before the request executed"));
      return AdmissionOutcome::kCancelledInQueue;
    }
    // Re-check the deadline/cancel scope at pickup: a request whose
    // deadline expired (or token fired) while it waited resolves promptly
    // without touching the sampling pool, and is accounted as an in-queue
    // death rather than executed work.
    const CancelScope run_scope(pending->request.cancel, pending->request.deadline);
    const Status dead = run_scope.ToStatus();
    if (!dead.ok()) {
      const AdmissionOutcome outcome = dead.code() == StatusCode::kDeadlineExceeded
                                           ? AdmissionOutcome::kDeadlineInQueue
                                           : AdmissionOutcome::kCancelledInQueue;
      pending->promise.set_value(dead);
      return outcome;
    }
    pending->promise.set_value(
        SolveOn(*pending->slot.state(), pending->request, run_scope, queue_wait));
    return AdmissionOutcome::kExecuted;
  };
  switch (queue_->Admit(std::move(task), policy)) {
    case AdmissionQueue::AdmitResult::kAdmitted:
      break;
    case AdmissionQueue::AdmitResult::kRejected:
      pending->slot.Dismiss();
      pending->promise.set_value(Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_->capacity()) +
          " in flight); retry later or raise max_queue_depth/num_drivers"));
      break;
    case AdmissionQueue::AdmitResult::kClosed:
      pending->slot.Dismiss();
      pending->promise.set_value(
          Status::Cancelled("engine is shutting down; request not admitted"));
      break;
  }
  return future;
}

std::future<StatusOr<SolveResult>> SeedMinEngine::SubmitAsync(SolveRequest request) {
  return Submit(std::move(request), options_.block_when_full
                                        ? AdmissionQueue::AdmitPolicy::kBlock
                                        : AdmissionQueue::AdmitPolicy::kReject);
}

std::vector<StatusOr<SolveResult>> SeedMinEngine::SolveBatch(
    std::span<const SolveRequest> requests) {
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  futures.reserve(requests.size());
  for (const SolveRequest& request : requests) {
    // Blocking admission: the synchronous batch caller is the natural
    // backpressure, so oversized batches throttle instead of rejecting.
    futures.push_back(Submit(request, AdmissionQueue::AdmitPolicy::kBlock));
  }
  std::vector<StatusOr<SolveResult>> results;
  results.reserve(requests.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

StatusOr<SolveResult> SeedMinEngine::RunAdaptive(GraphState& state,
                                                 const SolveRequest& request,
                                                 const CancelScope& scope,
                                                 RequestProfile* profile) {
  const DirectedGraph& graph = state.ref.graph();
  // Full-residual collections come from the epoch's shared cache, or — for
  // --no-cache A/B runs — a request-private one. Streams are key-derived
  // either way, so the choice never changes seeds/spreads/traces.
  std::optional<SamplerCache> private_cache;
  SamplerCache* sampler_cache = request.use_shared_cache
                                    ? &state.sampler_cache
                                    : &private_cache.emplace(graph);
  AlgorithmContext ctx;
  ctx.graph = &graph;
  ctx.model = request.model;
  ctx.epsilon = request.epsilon;
  ctx.batch_size = request.batch_size;
  ctx.rounding = request.rounding;
  ctx.oracle_trials = request.oracle_trials;
  ctx.num_threads = options_.num_threads;
  ctx.pool = pool_.get();
  ctx.cancel = &scope;
  ctx.profile = profile;
  ctx.sampler_cache = sampler_cache;

  SolveResult result;
  std::vector<AdaptiveRunTrace> traces;
  for (size_t run = 0; run < request.realizations; ++run) {
    AdaptiveWorld world(graph, request.eta, HiddenRealization(graph, request, run));
    // Selector RNG stream is independent of the hidden world.
    Rng selector_rng =
        StreamFor(request.seed,
                  kSelectorDomainBase + static_cast<uint64_t>(request.algorithm), run);
    auto selector = AlgorithmRegistry::Make(request.algorithm, ctx);
    if (!selector.ok()) return selector.status();
    if (result.algorithm_name.empty()) result.algorithm_name = (*selector)->Name();
    AdaptiveRunTrace trace = RunAdaptivePolicy(world, **selector, selector_rng, &scope);
    // A fired scope means the trace is partial: discard everything and
    // answer with the stop verdict (completed results stay pure functions
    // of (graph snapshot, request) — no partial data ever leaks out).
    ASM_RETURN_NOT_OK(scope.ToStatus());
    result.spreads.push_back(static_cast<double>(trace.total_activated));
    result.seed_counts.push_back(trace.NumSeeds());
    traces.push_back(std::move(trace));
  }
  FinishResult(request, std::move(traces), result);
  return result;
}

// Evaluates a one-shot (non-adaptive) seed set on the shared hidden
// realizations; `select_seconds` / `num_samples` describe the selection.
// Borrows per-graph forward-simulation scratch from the state's free list
// (reused across requests on this epoch's snapshot). Polls the scope per
// realization (a hidden-world sample + forward simulation is the natural
// chunk here); callers discard the partial result when the scope fired.
SolveResult SeedMinEngine::EvaluateOneShot(GraphState& state, const SolveRequest& request,
                                           const std::vector<NodeId>& seeds,
                                           double select_seconds, size_t num_samples,
                                           const CancelScope& scope) {
  const DirectedGraph& graph = state.ref.graph();
  SolveResult result;
  std::vector<AdaptiveRunTrace> traces;
  std::unique_ptr<ForwardSimulator> simulator = state.BorrowSimulator();
  for (size_t run = 0; run < request.realizations; ++run) {
    if (scope.ShouldStop()) break;
    const Realization hidden = HiddenRealization(graph, request, run);
    const size_t spread = simulator->Spread(hidden, seeds);
    AdaptiveRunTrace trace;
    trace.eta = request.eta;
    trace.seeds = seeds;
    trace.total_activated = static_cast<NodeId>(spread);
    trace.target_reached = spread >= request.eta;
    trace.seconds = select_seconds;  // selection cost is paid once
    trace.total_samples = num_samples;
    result.spreads.push_back(static_cast<double>(spread));
    result.seed_counts.push_back(seeds.size());
    traces.push_back(std::move(trace));
  }
  state.ReturnSimulator(std::move(simulator));
  FinishResult(request, std::move(traces), result);
  return result;
}

StatusOr<SolveResult> SeedMinEngine::RunAteucRequest(GraphState& state,
                                                     const SolveRequest& request,
                                                     const CancelScope& scope,
                                                     RequestProfile* profile) {
  Rng select_rng = StreamFor(request.seed, kAteucDomain, 0);
  std::optional<SamplerCache> private_cache;
  AteucOptions options;
  options.num_threads = options_.num_threads;
  options.pool = pool_.get();
  options.cancel = &scope;
  options.profile = profile;
  options.sampler_cache = request.use_shared_cache
                              ? &state.sampler_cache
                              : &private_cache.emplace(state.ref.graph());
  WallTimer select_timer;
  const AteucResult selection =
      RunAteuc(state.ref.graph(), request.model, request.eta, options, select_rng);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial selection: discard
  SolveResult result = EvaluateOneShot(state, request, selection.seeds,
                                       select_timer.Seconds(), selection.num_samples,
                                       scope);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial evaluation: discard
  result.algorithm_name = "ATEUC";
  return result;
}

StatusOr<SolveResult> SeedMinEngine::RunBisectionRequest(GraphState& state,
                                                         const SolveRequest& request,
                                                         const CancelScope& scope,
                                                         RequestProfile* profile) {
  Rng select_rng = StreamFor(request.seed, kBisectionDomain, 0);
  std::optional<SamplerCache> private_cache;
  BisectionOptions options;
  options.num_threads = options_.num_threads;
  options.pool = pool_.get();
  options.cancel = &scope;
  options.profile = profile;
  options.sampler_cache = request.use_shared_cache
                              ? &state.sampler_cache
                              : &private_cache.emplace(state.ref.graph());
  WallTimer select_timer;
  const BisectionResult selection = RunBisectionSeedMin(
      state.ref.graph(), request.model, request.eta, options, select_rng);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial selection: discard
  SolveResult result = EvaluateOneShot(state, request, selection.seeds,
                                       select_timer.Seconds(), selection.num_samples,
                                       scope);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial evaluation: discard
  result.algorithm_name = "Bisection";
  return result;
}

}  // namespace asti
