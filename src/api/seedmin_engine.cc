#include "api/seedmin_engine.h"

#include <utility>

#include "baselines/ateuc.h"
#include "baselines/bisection_seedmin.h"
#include "core/asti.h"
#include "diffusion/forward_sim.h"
#include "diffusion/world.h"
#include "util/rng.h"
#include "util/timer.h"

namespace asti {

namespace {

// Domain-separated stream derivation via Rng::Split(i): world streams are
// shared by every algorithm (same hidden realizations, the §6 protocol),
// selector streams are distinct per (algorithm, run). All derivations root
// at request.seed, never at engine state, so a result is a pure function
// of (graph, request).
enum StreamDomain : uint64_t {
  kWorldDomain = 0,
  kAteucDomain = 1,
  kBisectionDomain = 2,
  kSelectorDomainBase = 16,  // + AlgorithmId
};

Rng StreamFor(uint64_t seed, uint64_t domain, size_t run) {
  return Rng(seed).Split(domain).Split(run);
}

// Hidden realization for run r — shared across algorithms by construction.
Realization HiddenRealization(const DirectedGraph& graph, const SolveRequest& request,
                              size_t run) {
  Rng world_rng = StreamFor(request.seed, kWorldDomain, run);
  return request.model == DiffusionModel::kIndependentCascade
             ? Realization::SampleIc(graph, world_rng)
             : Realization::SampleLt(graph, world_rng);
}

void FinishResult(const SolveRequest& request, std::vector<AdaptiveRunTrace> traces,
                  SolveResult& result) {
  result.algorithm = request.algorithm;
  result.aggregate = Aggregate(traces);
  result.always_reached =
      result.aggregate.runs_reaching_target == result.aggregate.runs;
  if (request.keep_traces) result.traces = std::move(traces);
}

}  // namespace

// One admitted request: the query plus the promise its SubmitAsync future
// observes. Owned by the AdmissionTask closure until resolution.
struct SeedMinEngine::PendingRequest {
  SolveRequest request;
  std::promise<StatusOr<SolveResult>> promise;
};

SeedMinEngine::SeedMinEngine(const DirectedGraph& graph, Options options)
    : graph_(&graph), options_(options) {
  if (options_.num_threads != 1) pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  options_.num_drivers = ResolveThreadCount(options_.num_drivers);
  const size_t capacity = options_.max_inflight != 0
                              ? options_.max_inflight
                              : options_.num_drivers + options_.max_queue_depth;
  queue_ = std::make_unique<AdmissionQueue>(capacity);
}

SeedMinEngine::~SeedMinEngine() {
  // Abort-queued / drain-executing: strip never-started requests and
  // resolve their futures to Cancelled, then join the drivers, which
  // finish whatever they already picked up.
  for (AdmissionTask& orphan : queue_->Close()) {
    orphan(/*aborted=*/true);
    queue_->Complete();
  }
  for (std::thread& driver : drivers_) driver.join();
}

Status SeedMinEngine::Validate(const SolveRequest& request) const {
  const NodeId n = graph_->NumNodes();
  const AlgorithmInfo* info = AlgorithmRegistry::Find(request.algorithm);
  if (info == nullptr) {
    return Status::InvalidArgument(
        "unknown algorithm id " +
        std::to_string(static_cast<int>(request.algorithm)));
  }
  if (request.eta < 1 || request.eta > n) {
    return Status::InvalidArgument("eta " + std::to_string(request.eta) +
                                   " outside [1, " + std::to_string(n) + "]");
  }
  if (!(request.epsilon > 0.0 && request.epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon " + std::to_string(request.epsilon) +
                                   " outside (0, 1)");
  }
  if (request.realizations == 0) {
    return Status::InvalidArgument("realizations must be >= 1");
  }
  // The override is restricted to plain kAsti (mirroring Parse("ASTI-b")):
  // on a dedicated ASTI-b id it would make result.algorithm disagree with
  // the executed batch size and the selector's RNG stream domain.
  if (request.batch_size != 0 && request.algorithm != AlgorithmId::kAsti) {
    return Status::InvalidArgument(
        std::string("batch_size override is only valid with ASTI (got ") +
        info->name + "); use the ASTI-b id or batch_size on ASTI");
  }
  if (request.algorithm == AlgorithmId::kOracle && request.oracle_trials == 0) {
    return Status::InvalidArgument("oracle_trials must be >= 1");
  }
  return Status::OK();
}

StatusOr<SolveResult> SeedMinEngine::Solve(const SolveRequest& request) {
  ASM_RETURN_NOT_OK(Validate(request));
  const CancelScope scope(request.cancel, request.deadline);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // expired/cancelled before any work
  if (request.algorithm == AlgorithmId::kAteuc) {
    return RunAteucRequest(request, scope);
  }
  if (request.algorithm == AlgorithmId::kBisection) {
    return RunBisectionRequest(request, scope);
  }
  return RunAdaptive(request, scope);
}

void SeedMinEngine::EnsureDrivers() {
  std::call_once(drivers_once_, [this] {
    drivers_.reserve(options_.num_drivers);
    for (size_t i = 0; i < options_.num_drivers; ++i) {
      drivers_.emplace_back([this] { DriverLoop(); });
    }
  });
}

void SeedMinEngine::DriverLoop() {
  AdmissionTask task;
  while (queue_->Pop(task)) {
    task(/*aborted=*/false);
    queue_->Complete();
    task = nullptr;  // release the closure before blocking in Pop again
  }
}

std::future<StatusOr<SolveResult>> SeedMinEngine::Submit(
    SolveRequest request, AdmissionQueue::AdmitPolicy policy) {
  auto pending = std::make_shared<PendingRequest>();
  pending->request = std::move(request);
  std::future<StatusOr<SolveResult>> future = pending->promise.get_future();

  // Fast-fail on the caller's thread: invalid requests and dead-on-arrival
  // deadlines/cancellations never consume admission capacity.
  const Status invalid = Validate(pending->request);
  if (!invalid.ok()) {
    pending->promise.set_value(invalid);
    return future;
  }
  const CancelScope scope(pending->request.cancel, pending->request.deadline);
  const Status stopped = scope.ToStatus();
  if (!stopped.ok()) {
    pending->promise.set_value(stopped);
    return future;
  }

  EnsureDrivers();
  AdmissionTask task = [this, pending](bool aborted) {
    if (aborted) {
      pending->promise.set_value(
          Status::Cancelled("engine destroyed before the request executed"));
      return;
    }
    // Solve re-checks the deadline/cancel scope on entry, so a request
    // whose deadline expired while queued resolves promptly without
    // touching the sampling pool.
    pending->promise.set_value(Solve(pending->request));
  };
  switch (queue_->Admit(std::move(task), policy)) {
    case AdmissionQueue::AdmitResult::kAdmitted:
      break;
    case AdmissionQueue::AdmitResult::kRejected:
      pending->promise.set_value(Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_->capacity()) +
          " in flight); retry later or raise max_queue_depth/num_drivers"));
      break;
    case AdmissionQueue::AdmitResult::kClosed:
      pending->promise.set_value(
          Status::Cancelled("engine is shutting down; request not admitted"));
      break;
  }
  return future;
}

std::future<StatusOr<SolveResult>> SeedMinEngine::SubmitAsync(SolveRequest request) {
  return Submit(std::move(request), options_.block_when_full
                                        ? AdmissionQueue::AdmitPolicy::kBlock
                                        : AdmissionQueue::AdmitPolicy::kReject);
}

std::vector<StatusOr<SolveResult>> SeedMinEngine::SolveBatch(
    std::span<const SolveRequest> requests) {
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  futures.reserve(requests.size());
  for (const SolveRequest& request : requests) {
    // Blocking admission: the synchronous batch caller is the natural
    // backpressure, so oversized batches throttle instead of rejecting.
    futures.push_back(Submit(request, AdmissionQueue::AdmitPolicy::kBlock));
  }
  std::vector<StatusOr<SolveResult>> results;
  results.reserve(requests.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

StatusOr<SolveResult> SeedMinEngine::RunAdaptive(const SolveRequest& request,
                                                 const CancelScope& scope) {
  AlgorithmContext ctx;
  ctx.graph = graph_;
  ctx.model = request.model;
  ctx.epsilon = request.epsilon;
  ctx.batch_size = request.batch_size;
  ctx.rounding = request.rounding;
  ctx.oracle_trials = request.oracle_trials;
  ctx.num_threads = options_.num_threads;
  ctx.pool = pool_.get();
  ctx.cancel = &scope;

  SolveResult result;
  std::vector<AdaptiveRunTrace> traces;
  for (size_t run = 0; run < request.realizations; ++run) {
    AdaptiveWorld world(*graph_, request.eta, HiddenRealization(*graph_, request, run));
    // Selector RNG stream is independent of the hidden world.
    Rng selector_rng =
        StreamFor(request.seed,
                  kSelectorDomainBase + static_cast<uint64_t>(request.algorithm), run);
    auto selector = AlgorithmRegistry::Make(request.algorithm, ctx);
    if (!selector.ok()) return selector.status();
    if (result.algorithm_name.empty()) result.algorithm_name = (*selector)->Name();
    AdaptiveRunTrace trace = RunAdaptivePolicy(world, **selector, selector_rng, &scope);
    // A fired scope means the trace is partial: discard everything and
    // answer with the stop verdict (completed results stay pure functions
    // of (graph, request) — no partial data ever leaks out).
    ASM_RETURN_NOT_OK(scope.ToStatus());
    result.spreads.push_back(static_cast<double>(trace.total_activated));
    result.seed_counts.push_back(trace.NumSeeds());
    traces.push_back(std::move(trace));
  }
  FinishResult(request, std::move(traces), result);
  return result;
}

// Evaluates a one-shot (non-adaptive) seed set on the shared hidden
// realizations; `select_seconds` / `num_samples` describe the selection.
// Polls the scope per realization (a hidden-world sample + forward
// simulation is the natural chunk here); callers discard the partial
// result when the scope fired.
SolveResult SeedMinEngine::EvaluateOneShot(const SolveRequest& request,
                                           const std::vector<NodeId>& seeds,
                                           double select_seconds, size_t num_samples,
                                           const CancelScope& scope) {
  SolveResult result;
  std::vector<AdaptiveRunTrace> traces;
  ForwardSimulator simulator(*graph_);
  for (size_t run = 0; run < request.realizations; ++run) {
    if (scope.ShouldStop()) break;
    const Realization hidden = HiddenRealization(*graph_, request, run);
    const size_t spread = simulator.Spread(hidden, seeds);
    AdaptiveRunTrace trace;
    trace.eta = request.eta;
    trace.seeds = seeds;
    trace.total_activated = static_cast<NodeId>(spread);
    trace.target_reached = spread >= request.eta;
    trace.seconds = select_seconds;  // selection cost is paid once
    trace.total_samples = num_samples;
    result.spreads.push_back(static_cast<double>(spread));
    result.seed_counts.push_back(seeds.size());
    traces.push_back(std::move(trace));
  }
  FinishResult(request, std::move(traces), result);
  return result;
}

StatusOr<SolveResult> SeedMinEngine::RunAteucRequest(const SolveRequest& request,
                                                     const CancelScope& scope) {
  Rng select_rng = StreamFor(request.seed, kAteucDomain, 0);
  AteucOptions options;
  options.num_threads = options_.num_threads;
  options.pool = pool_.get();
  options.cancel = &scope;
  WallTimer select_timer;
  const AteucResult selection =
      RunAteuc(*graph_, request.model, request.eta, options, select_rng);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial selection: discard
  SolveResult result = EvaluateOneShot(request, selection.seeds, select_timer.Seconds(),
                                       selection.num_samples, scope);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial evaluation: discard
  result.algorithm_name = "ATEUC";
  return result;
}

StatusOr<SolveResult> SeedMinEngine::RunBisectionRequest(const SolveRequest& request,
                                                         const CancelScope& scope) {
  Rng select_rng = StreamFor(request.seed, kBisectionDomain, 0);
  BisectionOptions options;
  options.num_threads = options_.num_threads;
  options.pool = pool_.get();
  options.cancel = &scope;
  WallTimer select_timer;
  const BisectionResult selection =
      RunBisectionSeedMin(*graph_, request.model, request.eta, options, select_rng);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial selection: discard
  SolveResult result = EvaluateOneShot(request, selection.seeds, select_timer.Seconds(),
                                       selection.num_samples, scope);
  ASM_RETURN_NOT_OK(scope.ToStatus());  // partial evaluation: discard
  result.algorithm_name = "Bisection";
  return result;
}

}  // namespace asti
