#include "api/seedmin_engine.h"

#include <utility>

#include "baselines/ateuc.h"
#include "baselines/bisection_seedmin.h"
#include "core/asti.h"
#include "diffusion/forward_sim.h"
#include "diffusion/world.h"
#include "util/rng.h"
#include "util/timer.h"

namespace asti {

namespace {

// Domain-separated stream derivation via Rng::Split(i): world streams are
// shared by every algorithm (same hidden realizations, the §6 protocol),
// selector streams are distinct per (algorithm, run). All derivations root
// at request.seed, never at engine state, so a result is a pure function
// of (graph, request).
enum StreamDomain : uint64_t {
  kWorldDomain = 0,
  kAteucDomain = 1,
  kBisectionDomain = 2,
  kSelectorDomainBase = 16,  // + AlgorithmId
};

Rng StreamFor(uint64_t seed, uint64_t domain, size_t run) {
  return Rng(seed).Split(domain).Split(run);
}

// Hidden realization for run r — shared across algorithms by construction.
Realization HiddenRealization(const DirectedGraph& graph, const SolveRequest& request,
                              size_t run) {
  Rng world_rng = StreamFor(request.seed, kWorldDomain, run);
  return request.model == DiffusionModel::kIndependentCascade
             ? Realization::SampleIc(graph, world_rng)
             : Realization::SampleLt(graph, world_rng);
}

void FinishResult(const SolveRequest& request, std::vector<AdaptiveRunTrace> traces,
                  SolveResult& result) {
  result.algorithm = request.algorithm;
  result.aggregate = Aggregate(traces);
  result.always_reached =
      result.aggregate.runs_reaching_target == result.aggregate.runs;
  if (request.keep_traces) result.traces = std::move(traces);
}

}  // namespace

SeedMinEngine::SeedMinEngine(const DirectedGraph& graph, Options options)
    : graph_(&graph), options_(options) {
  if (options_.num_threads != 1) pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

Status SeedMinEngine::Validate(const SolveRequest& request) const {
  const NodeId n = graph_->NumNodes();
  const AlgorithmInfo* info = AlgorithmRegistry::Find(request.algorithm);
  if (info == nullptr) {
    return Status::InvalidArgument(
        "unknown algorithm id " +
        std::to_string(static_cast<int>(request.algorithm)));
  }
  if (request.eta < 1 || request.eta > n) {
    return Status::InvalidArgument("eta " + std::to_string(request.eta) +
                                   " outside [1, " + std::to_string(n) + "]");
  }
  if (!(request.epsilon > 0.0 && request.epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon " + std::to_string(request.epsilon) +
                                   " outside (0, 1)");
  }
  if (request.realizations == 0) {
    return Status::InvalidArgument("realizations must be >= 1");
  }
  // The override is restricted to plain kAsti (mirroring Parse("ASTI-b")):
  // on a dedicated ASTI-b id it would make result.algorithm disagree with
  // the executed batch size and the selector's RNG stream domain.
  if (request.batch_size != 0 && request.algorithm != AlgorithmId::kAsti) {
    return Status::InvalidArgument(
        std::string("batch_size override is only valid with ASTI (got ") +
        info->name + "); use the ASTI-b id or batch_size on ASTI");
  }
  if (request.algorithm == AlgorithmId::kOracle && request.oracle_trials == 0) {
    return Status::InvalidArgument("oracle_trials must be >= 1");
  }
  return Status::OK();
}

StatusOr<SolveResult> SeedMinEngine::Solve(const SolveRequest& request) {
  ASM_RETURN_NOT_OK(Validate(request));
  if (request.algorithm == AlgorithmId::kAteuc) return RunAteucRequest(request);
  if (request.algorithm == AlgorithmId::kBisection) {
    return RunBisectionRequest(request);
  }
  return RunAdaptive(request);
}

std::future<StatusOr<SolveResult>> SeedMinEngine::SubmitAsync(SolveRequest request) {
  // One lightweight driver thread per request; the heavy lifting (sampling
  // batches, coverage scans) still lands on the shared pool. Driving the
  // solve on a pool worker would risk deadlock: a solve blocks on its
  // TaskGroup, and with all workers blocked no sampling task could run.
  return std::async(std::launch::async,
                    [this, request = std::move(request)]() { return Solve(request); });
}

std::vector<StatusOr<SolveResult>> SeedMinEngine::SolveBatch(
    std::span<const SolveRequest> requests) {
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  futures.reserve(requests.size());
  for (const SolveRequest& request : requests) futures.push_back(SubmitAsync(request));
  std::vector<StatusOr<SolveResult>> results;
  results.reserve(requests.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

StatusOr<SolveResult> SeedMinEngine::RunAdaptive(const SolveRequest& request) {
  AlgorithmContext ctx;
  ctx.graph = graph_;
  ctx.model = request.model;
  ctx.epsilon = request.epsilon;
  ctx.batch_size = request.batch_size;
  ctx.rounding = request.rounding;
  ctx.oracle_trials = request.oracle_trials;
  ctx.num_threads = options_.num_threads;
  ctx.pool = pool_.get();

  SolveResult result;
  std::vector<AdaptiveRunTrace> traces;
  for (size_t run = 0; run < request.realizations; ++run) {
    AdaptiveWorld world(*graph_, request.eta, HiddenRealization(*graph_, request, run));
    // Selector RNG stream is independent of the hidden world.
    Rng selector_rng =
        StreamFor(request.seed,
                  kSelectorDomainBase + static_cast<uint64_t>(request.algorithm), run);
    auto selector = AlgorithmRegistry::Make(request.algorithm, ctx);
    if (!selector.ok()) return selector.status();
    if (result.algorithm_name.empty()) result.algorithm_name = (*selector)->Name();
    AdaptiveRunTrace trace = RunAdaptivePolicy(world, **selector, selector_rng);
    result.spreads.push_back(static_cast<double>(trace.total_activated));
    result.seed_counts.push_back(trace.NumSeeds());
    traces.push_back(std::move(trace));
  }
  FinishResult(request, std::move(traces), result);
  return result;
}

// Evaluates a one-shot (non-adaptive) seed set on the shared hidden
// realizations; `select_seconds` / `num_samples` describe the selection.
SolveResult SeedMinEngine::EvaluateOneShot(const SolveRequest& request,
                                           const std::vector<NodeId>& seeds,
                                           double select_seconds, size_t num_samples) {
  SolveResult result;
  std::vector<AdaptiveRunTrace> traces;
  ForwardSimulator simulator(*graph_);
  for (size_t run = 0; run < request.realizations; ++run) {
    const Realization hidden = HiddenRealization(*graph_, request, run);
    const size_t spread = simulator.Spread(hidden, seeds);
    AdaptiveRunTrace trace;
    trace.eta = request.eta;
    trace.seeds = seeds;
    trace.total_activated = static_cast<NodeId>(spread);
    trace.target_reached = spread >= request.eta;
    trace.seconds = select_seconds;  // selection cost is paid once
    trace.total_samples = num_samples;
    result.spreads.push_back(static_cast<double>(spread));
    result.seed_counts.push_back(seeds.size());
    traces.push_back(std::move(trace));
  }
  FinishResult(request, std::move(traces), result);
  return result;
}

StatusOr<SolveResult> SeedMinEngine::RunAteucRequest(const SolveRequest& request) {
  Rng select_rng = StreamFor(request.seed, kAteucDomain, 0);
  AteucOptions options;
  options.num_threads = options_.num_threads;
  options.pool = pool_.get();
  WallTimer select_timer;
  const AteucResult selection =
      RunAteuc(*graph_, request.model, request.eta, options, select_rng);
  SolveResult result = EvaluateOneShot(request, selection.seeds, select_timer.Seconds(),
                                       selection.num_samples);
  result.algorithm_name = "ATEUC";
  return result;
}

StatusOr<SolveResult> SeedMinEngine::RunBisectionRequest(const SolveRequest& request) {
  Rng select_rng = StreamFor(request.seed, kBisectionDomain, 0);
  BisectionOptions options;
  options.num_threads = options_.num_threads;
  options.pool = pool_.get();
  WallTimer select_timer;
  const BisectionResult selection =
      RunBisectionSeedMin(*graph_, request.model, request.eta, options, select_rng);
  SolveResult result = EvaluateOneShot(request, selection.seeds, select_timer.Seconds(),
                                       selection.num_samples);
  result.algorithm_name = "Bisection";
  return result;
}

}  // namespace asti
