// The uniform query/response pair of the SeedMinEngine façade.
//
// The paper frames adaptive seed minimization as a query — given (graph,
// model, η, ε), return a minimal seed sequence. SolveRequest is that query
// as a value type: the *name* of a catalog graph plus every knob the nine
// legacy entry points re-threaded (algorithm id, model, η, ε, batch size,
// realizations, per-request seed, algorithm-specific params) in one
// struct. The graph name is resolved against the engine's GraphCatalog at
// admission; the request pins that snapshot (name, epoch) for its whole
// execution, so hot-swapping the graph never perturbs in-flight work. A
// request carries its own RNG seed; request-owned streams (hidden worlds,
// residual-round sampling) are derived from that seed alone, while shared
// full-residual collections use streams derived from the sampler-cache KEY
// (never any request's seed — see src/api/README.md). A SolveResult is
// therefore a pure function of (graph snapshot, request) — bit-identical
// whether the request runs solo, batched, interleaved with other clients
// on a shared pool, against a warm or cold cache, or with
// use_shared_cache off.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "api/algorithm_registry.h"
#include "core/trace.h"
#include "diffusion/model.h"
#include "graph/types.h"
#include "obs/span.h"
#include "stats/truncation.h"
#include "util/cancellation.h"

namespace asti {

/// One seed-minimization query.
struct SolveRequest {
  /// Name of the catalog graph to solve against, resolved at admission:
  /// Status::NotFound for names the catalog doesn't hold,
  /// Status::InvalidArgument when left empty (the legacy single-graph
  /// engine binding is gone — every request names its dataset). The
  /// resolved snapshot is pinned for the request's lifetime; the answer
  /// records the (graph_name, graph_epoch) it was computed on.
  std::string graph;
  AlgorithmId algorithm = AlgorithmId::kAsti;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Activation threshold η ∈ [1, n].
  NodeId eta = 1;
  /// Approximation slack ε ∈ (0, 1) for the adaptive sampling-based
  /// algorithms (TRIM family, AdaptIM). The one-shot baselines (ATEUC,
  /// Bisection) keep their internal confidence defaults — their ε is a
  /// different quantity (bound confidence, not approximation slack) and
  /// the §6 comparison protocol pins it; the field is still validated so
  /// one request shape has one contract.
  double epsilon = 0.5;
  /// Batch-size override for kAsti: 0 = plain TRIM, b > 1 runs TRIM-B
  /// with that b (how non-canonical batches like ASTI-16 are expressed).
  /// Invalid on every other algorithm id — the ASTI-b ids carry their own
  /// batch, and mixing the two would desynchronize the result's algorithm
  /// label and RNG stream domain from the executed configuration.
  NodeId batch_size = 0;
  /// Hidden realizations to solve against (the paper averages 20); must
  /// be >= 1. Adaptive algorithms re-run per realization; non-adaptive
  /// ones select once and are evaluated on all of them.
  size_t realizations = 1;
  /// Per-request RNG root: hidden worlds and selector streams are all
  /// derived from this seed via Rng::Split, independent of engine state.
  uint64_t seed = 1;
  /// Retain full per-round traces in the result (Fig. 10 style analyses).
  bool keep_traces = false;
  /// Root-count rounding ablation hook (TRIM family).
  RootRounding rounding = RootRounding::kRandomized;
  /// MC trials per candidate for OracleGreedy.
  size_t oracle_trials = 200;
  /// When true (default) the request's full-residual collections — ATEUC /
  /// Bisection whole runs, round 1 of every adaptive algorithm — are served
  /// from the engine's per-(graph, epoch) shared sampler cache. When false
  /// the request samples those collections fresh into a request-private
  /// cache (the asm_tool --no-cache A/B path). Results are BIT-IDENTICAL
  /// either way: cache streams are derived from the cache key, never the
  /// request seed (see src/api/README.md, "Sampler cache & certified
  /// reuse"). Only timing, profile cache counters, and engine cache metrics
  /// differ.
  bool use_shared_cache = true;
  /// Cooperative cancellation handle (optional, not owned; may be shared
  /// by several requests). Must stay alive until this request's result —
  /// or future — resolves; the engine polls it at chunk/pick/round
  /// boundaries and answers Status::Cancelled once it fires. Completed
  /// results are bit-identical with or without a token attached.
  const CancelToken* cancel = nullptr;
  /// Absolute steady-clock deadline; kNoDeadline (the default) disables
  /// it. Measured against the whole request lifetime — queue wait under
  /// SubmitAsync counts — and answered with Status::DeadlineExceeded.
  /// Build relative deadlines with DeadlineAfter(seconds).
  std::chrono::steady_clock::time_point deadline = CancelScope::kNoDeadline;
};

/// The engine's answer: per-realization outcomes plus their aggregate.
struct SolveResult {
  AlgorithmId algorithm = AlgorithmId::kAsti;
  /// Selector display name ("ASTI", "ASTI-16", "ATEUC", ...).
  std::string algorithm_name;
  /// Catalog identity of the snapshot this result was computed on: the
  /// request's graph name and the epoch it resolved to at admission.
  /// Reproducing the result requires that exact (name, epoch) snapshot.
  std::string graph_name;
  uint64_t graph_epoch = 0;
  RunAggregate aggregate;
  std::vector<double> spreads;           // final spread per realization
  std::vector<size_t> seed_counts;       // per realization
  std::vector<AdaptiveRunTrace> traces;  // only if keep_traces
  /// True iff every realization reached η.
  bool always_reached = false;
  /// Serving-phase breakdown of this request (queue wait, sampling,
  /// coverage, certify, total; sampling volume). Phase slots are populated
  /// when the engine runs with ServingOptions::enable_metrics (the default);
  /// total/queue-wait are always filled. Profiling is passive — the seeds,
  /// spreads, and traces above are bit-identical with metrics on or off.
  RequestProfile profile;
};

}  // namespace asti
