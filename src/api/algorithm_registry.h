// Algorithm registry — the single `AlgorithmId -> selector` construction
// point of the library.
//
// Every harness used to carry its own construction switch (the experiment
// runner, asm_tool's name parser, the examples); the registry subsumes
// them: `AlgorithmRegistry::Make(id, ctx)` builds a RoundSelector from a
// uniform context, `Parse` maps user-facing names ("ASTI-4", "AdaptIM")
// to ids, and `List` enumerates everything with its paper provenance for
// `asm_tool --list-algorithms` style surfaces. Non-adaptive algorithms
// (ATEUC, Bisection) have no RoundSelector; Make reports that via Status
// and the SeedMinEngine serves them through its one-shot path.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/selector.h"
#include "diffusion/model.h"
#include "obs/span.h"
#include "stats/truncation.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace asti {

class DirectedGraph;
class SamplerCache;
class ThreadPool;

/// Algorithms of the paper's evaluation (§6.1) plus the extra baselines.
enum class AlgorithmId {
  kAsti,      // ASTI = TRIM (batch 1)
  kAsti2,     // ASTI-2 = TRIM-B, b = 2
  kAsti4,     // ASTI-4
  kAsti8,     // ASTI-8
  kAdaptIm,   // adaptive IM baseline
  kAteuc,     // non-adaptive baseline
  kDegree,    // residual-degree heuristic (extra)
  kOracle,    // Monte-Carlo oracle greedy (tiny graphs only)
  kBisection, // non-adaptive bisection-on-k transformation (extra)
};

/// Catalog entry for one algorithm — the single place per-algorithm
/// metadata lives (Validate, Make and the batch-size rules derive from it).
struct AlgorithmInfo {
  AlgorithmId id;
  const char* name;        // display name matching the paper's legends
  const char* paper_name;  // provenance ("TRIM, Alg. 2", "Han et al. ...")
  bool adaptive;           // false = one-shot selection (ATEUC, Bisection)
  /// Default TRIM-family batch b (1 for ASTI, 2/4/8 for ASTI-b); 0 marks
  /// a non-TRIM algorithm, for which batch_size overrides are invalid.
  NodeId default_batch = 0;
};

/// A parsed `--algorithm` value: the id plus an optional batch-size
/// override (0 = the id's default) so "ASTI-16" is expressible even though
/// only b ∈ {2, 4, 8} have dedicated ids.
struct AlgorithmSpec {
  AlgorithmId id = AlgorithmId::kAsti;
  NodeId batch_size = 0;
};

/// Everything Make needs to build any selector: the per-request knobs that
/// used to be re-threaded through per-algorithm Options structs.
struct AlgorithmContext {
  const DirectedGraph* graph = nullptr;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  double epsilon = 0.5;      // sampling slack ε for TRIM/TRIM-B/AdaptIM
  NodeId batch_size = 0;     // 0 = the algorithm id's default batch
  RootRounding rounding = RootRounding::kRandomized;
  size_t oracle_trials = 200;  // MC trials per candidate (kOracle only)
  /// Sampling/coverage workers when `pool` is null: 1 = sequential, 0 =
  /// all hardware threads, k = k private workers.
  size_t num_threads = 1;
  /// Shared resident pool (overrides num_threads); the SeedMinEngine mode.
  ThreadPool* pool = nullptr;
  /// Cooperative stop condition threaded into the selector's sampling and
  /// coverage loops (not owned; must outlive the selector). See
  /// TrimOptions::cancel for the unwind contract.
  const CancelScope* cancel = nullptr;
  /// Per-request phase profile threaded into the selector's sampling /
  /// coverage / certify paths (not owned; may be null). Purely passive —
  /// see TrimOptions::profile.
  RequestProfile* profile = nullptr;
  /// Shared sampler cache for full-residual (round-1) collections (not
  /// owned; may be null = fully request-owned sampling). See
  /// TrimOptions::sampler_cache and sampling/sampler_cache.h.
  SamplerCache* sampler_cache = nullptr;
};

class AlgorithmRegistry {
 public:
  /// Display name matching the paper's legends ("ASTI", "AdaptIM", ...).
  static const char* Name(AlgorithmId id);

  /// Full catalog, in AlgorithmId order.
  static const std::vector<AlgorithmInfo>& List();

  /// Catalog entry for an id, or nullptr for ids outside the enum — the
  /// one known-algorithm check (SeedMinEngine::Validate uses it).
  static const AlgorithmInfo* Find(AlgorithmId id);

  /// Parses a user-facing name ("ASTI", "ASTI-16", "AdaptIM", "ATEUC",
  /// "Degree", "Oracle", "Bisection"); InvalidArgument on unknown names.
  static StatusOr<AlgorithmSpec> Parse(const std::string& name);

  /// Builds the round selector for an adaptive algorithm. Returns
  /// InvalidArgument for unknown ids and for the non-adaptive algorithms
  /// (kAteuc, kBisection), which are served by SeedMinEngine directly.
  static StatusOr<std::unique_ptr<RoundSelector>> Make(AlgorithmId id,
                                                       const AlgorithmContext& ctx);
};

/// Legacy free-function spelling, kept for the experiment/bench harnesses.
inline const char* AlgorithmName(AlgorithmId id) { return AlgorithmRegistry::Name(id); }

}  // namespace asti
