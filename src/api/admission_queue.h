// Bounded MPMC admission queue — the backpressure primitive behind
// SeedMinEngine's serving front.
//
// PR 3's SubmitAsync launched one detached std::async thread per request:
// a burst of B clients meant B driver threads all contending for the one
// shared sampling pool, with nothing to say "no". This queue inverts that:
// producers (client threads calling SubmitAsync / SolveBatch) admit work
// items, a small fixed set of consumers (the engine's driver threads)
// executes them, and admission is counted from *accept to completion* —
// not accept to dequeue — so the bound covers queued AND executing
// requests. With capacity Q + D (Q waiting slots, D drivers), a burst of
// Q + D + k submissions yields exactly k rejections regardless of how the
// dequeue races go, because dequeuing alone never frees a slot.
//
// A work item is a callback taking one flag: drivers run it with
// aborted = false; items stripped by Close() (engine destruction with
// requests still queued) are run with aborted = true so their futures can
// resolve to Status::Cancelled instead of being dropped. Items must not
// throw.
//
// Thread-safety: every member is safe to call concurrently. Blocking
// admission (kBlock) waits on completion capacity and is woken by either
// a slot freeing or Close(); Pop blocks until an item or Close arrives.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace asti {

/// One admitted unit of work. `aborted` is true only when the queue was
/// closed before a driver picked the item up.
using AdmissionTask = std::function<void(bool aborted)>;

class AdmissionQueue {
 public:
  enum class AdmitPolicy {
    kReject,  // full queue answers kRejected immediately (backpressure to caller)
    kBlock,   // full queue blocks the producer until a slot frees or Close()
  };

  enum class AdmitResult {
    kAdmitted,
    kRejected,  // capacity exhausted under kReject
    kClosed,    // Close() ran; nothing is admitted any more
  };

  /// Monotonic counters; snapshot via stats(). admitted counts successful
  /// Admit calls, completed counts Complete calls (aborted items
  /// included). Since a consumer calls Complete after running the item,
  /// completed can momentarily trail the resolution of the item's future.
  struct Stats {
    size_t admitted = 0;
    size_t rejected = 0;
    size_t completed = 0;
  };

  /// `capacity` bounds admitted-but-not-completed items; >= 1.
  explicit AdmissionQueue(size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Tries to admit one item. On kAdmitted the item occupies a capacity
  /// slot until Complete() is called for it.
  AdmitResult Admit(AdmissionTask task, AdmitPolicy policy);

  /// Consumer side: blocks until an item is available (true) or the queue
  /// is closed (false, `out` untouched). Callers must invoke the item and
  /// then Complete().
  bool Pop(AdmissionTask& out);

  /// Releases one capacity slot (an item finished executing or aborting).
  void Complete();

  /// Stops admission, wakes every blocked producer and consumer, and
  /// returns the items that were queued but never popped — the caller
  /// runs them with aborted = true (and calls Complete() for each).
  /// Idempotent; later calls return nothing.
  std::vector<AdmissionTask> Close();

  size_t capacity() const { return capacity_; }

  /// Admitted-but-not-completed items right now (queued + executing).
  size_t InFlight() const;

  Stats stats() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable space_;  // producers blocked under kBlock
  std::condition_variable ready_;  // consumers waiting in Pop
  std::deque<AdmissionTask> queue_;
  size_t in_flight_ = 0;  // admitted, not yet completed
  bool closed_ = false;
  Stats stats_;
};

}  // namespace asti
