// Bounded MPMC admission queue — the backpressure primitive behind
// SeedMinEngine's serving front.
//
// PR 3's SubmitAsync launched one detached std::async thread per request:
// a burst of B clients meant B driver threads all contending for the one
// shared sampling pool, with nothing to say "no". This queue inverts that:
// producers (client threads calling SubmitAsync / SolveBatch) admit work
// items, a small fixed set of consumers (the engine's driver threads)
// executes them, and admission is counted from *accept to completion* —
// not accept to dequeue — so the bound covers queued AND executing
// requests. With capacity Q + D (Q waiting slots, D drivers), a burst of
// Q + D + k submissions yields exactly k rejections regardless of how the
// dequeue races go, because dequeuing alone never frees a slot.
//
// A work item is a callback taking one flag and *returning how it
// resolved*: drivers run it with aborted = false; items stripped by
// Close() (engine destruction with requests still queued) are run with
// aborted = true so their futures can resolve to Status::Cancelled
// instead of being dropped. The returned AdmissionOutcome feeds the
// per-outcome stats() counters — executed, cancelled while still queued,
// or expired while still queued — so the serving front can tell "work we
// did" from "work that died waiting" at a glance. Items must not throw.
//
// Thread-safety: every member is safe to call concurrently. Blocking
// admission (kBlock) waits on completion capacity and is woken by either
// a slot freeing or Close(); Pop blocks until an item or Close arrives.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace asti {

/// How one admitted item resolved — the consumer reports it back through
/// Complete() so the queue's counters can split by outcome.
enum class AdmissionOutcome {
  kExecuted,          // the item ran (whatever Status its work produced)
  kCancelledInQueue,  // resolved Cancelled without ever executing
                      //   (queue-abort on Close, or token fired while queued)
  kDeadlineInQueue,   // deadline expired while waiting; never executed
};

/// One admitted unit of work. `aborted` is true only when the queue was
/// closed before a driver picked the item up. Returns how it resolved.
using AdmissionTask = std::function<AdmissionOutcome(bool aborted)>;

class AdmissionQueue {
 public:
  enum class AdmitPolicy {
    kReject,  // full queue answers kRejected immediately (backpressure to caller)
    kBlock,   // full queue blocks the producer until a slot frees or Close()
  };

  enum class AdmitResult {
    kAdmitted,
    kRejected,  // capacity exhausted under kReject
    kClosed,    // Close() ran; nothing is admitted any more
  };

  /// Monotonic per-outcome counters; snapshot via stats().
  ///   accepted            — successful Admit calls.
  ///   rejected            — Admit calls answered kRejected (capacity).
  ///   completed           — Complete calls (every accepted item produces
  ///                         exactly one, whatever its outcome), so
  ///                         accepted == completed once the queue drains.
  ///   cancelled_in_queue  — accepted items resolved Cancelled without
  ///                         executing (Close abort, token fired queued).
  ///   deadline_in_queue   — accepted items whose deadline expired while
  ///                         still waiting; never executed.
  /// Since a consumer calls Complete after running the item, completed can
  /// momentarily trail the resolution of the item's future.
  ///
  /// Consistency: every snapshot is taken under the queue mutex, so the
  /// invariants hold in EVERY observation, not just at quiescence:
  ///   accepted == completed + in_flight
  ///   cancelled_in_queue + deadline_in_queue <= completed
  struct Stats {
    size_t accepted = 0;
    size_t rejected = 0;
    size_t completed = 0;
    size_t cancelled_in_queue = 0;
    size_t deadline_in_queue = 0;
    /// Admitted-but-not-completed at snapshot time (queued + executing) —
    /// captured under the same lock as the counters above so the
    /// accept-to-completion accounting balances in each snapshot.
    size_t in_flight = 0;
  };

  /// `capacity` bounds admitted-but-not-completed items; >= 1.
  explicit AdmissionQueue(size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Tries to admit one item. On kAdmitted the item occupies a capacity
  /// slot until Complete() is called for it.
  AdmitResult Admit(AdmissionTask task, AdmitPolicy policy);

  /// Consumer side: blocks until an item is available (true) or the queue
  /// is closed (false, `out` untouched). Callers must invoke the item and
  /// then Complete() with the outcome the item returned.
  bool Pop(AdmissionTask& out);

  /// Releases one capacity slot (an item finished executing or aborting)
  /// and records how the item resolved.
  void Complete(AdmissionOutcome outcome = AdmissionOutcome::kExecuted);

  /// Stops admission, wakes every blocked producer and consumer, and
  /// returns the items that were queued but never popped — the caller
  /// runs them with aborted = true (and calls Complete() for each).
  /// Idempotent; later calls return nothing.
  std::vector<AdmissionTask> Close();

  size_t capacity() const { return capacity_; }

  /// Admitted-but-not-completed items right now (queued + executing).
  size_t InFlight() const;

  Stats stats() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable space_;  // producers blocked under kBlock
  std::condition_variable ready_;  // consumers waiting in Pop
  std::deque<AdmissionTask> queue_;
  size_t in_flight_ = 0;  // admitted, not yet completed
  bool closed_ = false;
  Stats stats_;
};

}  // namespace asti
